/**
 * @file
 * Figure 12: "Client latency tail with different switch latencies" —
 * the 2000-node 10 Gbps memcached experiment with an additional 0 /
 * 50 / 100 ns of port-to-port latency at every switch level.
 *
 * Shape targets: the extra switch latency does not change the *shape*
 * of the tail curves and imposes no significant tax on regular non-tail
 * requests; the simulator is stable under small hardware tweaks (the
 * paper's error bars are tiny).
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Figure 12: tail vs added switch port-to-port latency",
           "Fig. 12 - +0/+50/+100 ns at 2000 nodes, 10 Gbps");

    Table t({"extra latency", "p50 (us)", "p95 (us)", "p99 (us)",
             "p99.9 (us)"});
    std::vector<double> p50s, p99s;

    for (int extra_ns : {0, 50, 100}) {
        apps::McExperimentParams p = mcConfig(1984, true, true);
        for (switchm::SwitchParams *sw :
             {&p.cluster.topo.rack_sw, &p.cluster.topo.array_sw,
              &p.cluster.topo.dc_sw}) {
            sw->port_latency += SimTime::ns(extra_ns);
        }
        Simulator sim;
        apps::McExperiment exp(sim, p);
        exp.run();
        const SampleSet &lat = exp.result().latency_us;
        t.addRow({Table::cell("+%d ns", extra_ns),
                  Table::cell("%.1f", lat.percentile(50)),
                  Table::cell("%.1f", lat.percentile(95)),
                  Table::cell("%.1f", lat.percentile(99)),
                  Table::cell("%.1f", lat.percentile(99.9))});
        p50s.push_back(lat.percentile(50));
        p99s.push_back(lat.percentile(99));

        analysis::printCdf(Table::cell("+%d ns tail (p96+)", extra_ns),
                           lat.tailCdf(96.0), 12);
    }
    t.print();

    std::printf("\nmedian shift +100 ns vs +0: %.1f us (paper: no "
                "significant tax on\nregular requests); p99 shift: "
                "%.1f us (paper: 253 us -> 364 us on its\nabsolute "
                "scale; shape preserved)\n",
                p50s.back() - p50s.front(), p99s.back() - p99s.front());
    return 0;
}
