/**
 * @file
 * google-benchmark microbenchmarks of the simulation engine itself:
 * event queue throughput, coroutine wakeup cost, RNG and statistics
 * primitives, and the switch forwarding fast path.  These bound the
 * software engine's achievable event rate (the quantity DIABLO's FPGA
 * acceleration improves by two orders of magnitude).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_json.hh"
#include "core/random.hh"
#include "core/simulator.hh"
#include "core/stats.hh"
#include "fame/partition.hh"
#include "net/link.hh"
#include "switchm/voq_switch.hh"

using namespace diablo;
using namespace diablo::time_literals;

namespace {

void
BM_EventScheduleExecute(benchmark::State &state)
{
    Simulator sim;
    int64_t n = 0;
    for (auto _ : state) {
        sim.schedule(1_ns, [&n] { ++n; });
        sim.run();
    }
    benchmark::DoNotOptimize(n);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventScheduleExecute);

void
BM_EventQueueDepth(benchmark::State &state)
{
    const int depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        int64_t n = 0;
        for (int i = 0; i < depth; ++i) {
            sim.schedule(SimTime::ns(i % 97), [&n] { ++n; });
        }
        sim.run();
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EventQueueDepth)->Arg(1024)->Arg(65536)->Arg(262144);

void
BM_EventCancelHeavy(benchmark::State &state)
{
    // Cancellation-heavy churn: schedule a batch, cancel every other
    // event, run the rest.  Exercises the tombstone path (cancel is
    // O(1); the heap prunes lazily at pop time).
    const int depth = static_cast<int>(state.range(0));
    std::vector<EventId> ids;
    ids.reserve(static_cast<size_t>(depth));
    for (auto _ : state) {
        Simulator sim;
        int64_t n = 0;
        ids.clear();
        for (int i = 0; i < depth; ++i) {
            ids.push_back(sim.schedule(SimTime::ns(i % 251 + 1),
                                       [&n] { ++n; }));
        }
        for (int i = 0; i < depth; i += 2) {
            sim.cancel(ids[static_cast<size_t>(i)]);
        }
        sim.run();
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EventCancelHeavy)->Arg(4096);

Task<>
sleeperLoop(Simulator &sim, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await sim.sleep(1_ns);
    }
}

void
BM_CoroutineSleepWake(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        sim.spawn(sleeperLoop(sim, 1000));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineSleepWake);

/**
 * Sparse cross-partition ping-pong: one message per millisecond through
 * channels with 1 us lookahead.  Without quantum skipping the barrier
 * scheduler spins ~1000 empty quanta per hop; with it, one per hop.
 */
struct PingPong {
    explicit PingPong(fame::PartitionSet &ps) : ps(ps)
    {
        c01 = &ps.makeChannel(0, 1, 1_us);
        c10 = &ps.makeChannel(1, 0, 1_us);
    }

    void
    onToken(size_t part, int remaining)
    {
        ++hops;
        if (remaining <= 0) {
            return;
        }
        Simulator &sim = ps.partition(part);
        auto *ch = part == 0 ? c01 : c10;
        const size_t dst = 1 - part;
        ch->post(sim.now() + 1_ms, [this, dst, remaining] {
            onToken(dst, remaining - 1);
        });
    }

    fame::PartitionSet &ps;
    fame::PartitionSet::Channel *c01;
    fame::PartitionSet::Channel *c10;
    uint64_t hops = 0;
};

void
BM_PartitionIdleQuanta(benchmark::State &state)
{
    const bool skip = state.range(0) != 0;
    const int kHops = 50;
    uint64_t quanta = 0;
    for (auto _ : state) {
        fame::PartitionSet ps(2);
        PingPong pp(ps);
        ps.setSkipIdleQuanta(skip);
        ps.partition(0).schedule(SimTime(), [&pp] { pp.onToken(0, kHops); });
        ps.runSequential(SimTime::ms(kHops + 2));
        quanta = ps.quantaExecuted();
        benchmark::DoNotOptimize(pp.hops);
    }
    state.counters["quanta"] =
        benchmark::Counter(static_cast<double>(quanta));
    state.SetItemsProcessed(state.iterations() * (kHops + 1));
}
BENCHMARK(BM_PartitionIdleQuanta)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"skip"})
    ->Unit(benchmark::kMicrosecond);

void
BM_RngUniform(benchmark::State &state)
{
    Rng rng(42);
    double acc = 0;
    for (auto _ : state) {
        acc += rng.uniform();
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void
BM_GeneralizedPareto(benchmark::State &state)
{
    Rng rng(42);
    double acc = 0;
    for (auto _ : state) {
        acc += rng.generalizedPareto(0, 214.476, 0.348238);
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeneralizedPareto);

void
BM_SampleSetPercentile(benchmark::State &state)
{
    SampleSet s;
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        s.record(rng.exponential(100));
    }
    for (auto _ : state) {
        // Insert invalidates the sort cache; this measures the
        // sort + interpolate cost benches pay once per run.
        s.record(1.0);
        benchmark::DoNotOptimize(s.percentile(99));
    }
}
BENCHMARK(BM_SampleSetPercentile);

void
BM_SwitchForwarding(benchmark::State &state)
{
    Simulator sim;
    switchm::SwitchParams params;
    params.num_ports = 16;
    params.buffer_per_port_bytes = 1 << 20;
    params.port_latency = 1_us;
    switchm::VoqSwitch sw(sim, params);

    struct NullSink : net::PacketSink {
        void receive(net::PacketPtr) override {}
    } sink;
    std::vector<std::unique_ptr<net::Link>> links;
    for (uint32_t i = 0; i < 16; ++i) {
        links.push_back(std::make_unique<net::Link>(
            sim, "out", Bandwidth::gbps(10), 0_ns));
        links.back()->connectTo(sink);
        sw.attachOutLink(i, *links.back());
    }

    uint64_t pkts = 0;
    for (auto _ : state) {
        auto p = net::makePacket();
        p->flow.proto = net::Proto::Udp;
        p->payload_bytes = 1400;
        p->route = net::SourceRoute(
            {static_cast<uint16_t>(pkts % 16)});
        p->last_bit = sim.now();
        sw.inPort(static_cast<uint32_t>(pkts % 16))
            .receive(std::move(p));
        sim.run();
        ++pkts;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchForwarding);

} // namespace

// Custom main: console output as usual, plus a JSON trajectory entry
// appended to BENCH_engine.json (see bench/bench_json.hh) so engine
// throughput is tracked across PRs.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::ConsoleReporter console;
    diablo::bench_json::TrajectoryReporter trajectory;
    diablo::bench_json::TeeReporter tee(console, trajectory);
    benchmark::RunSpecifiedBenchmarks(&tee);
    const std::string path =
        diablo::bench_json::TrajectoryReporter::defaultPath();
    if (!trajectory.append(path)) {
        fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
    benchmark::Shutdown();
    return 0;
}
