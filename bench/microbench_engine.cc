/**
 * @file
 * google-benchmark microbenchmarks of the simulation engine itself:
 * event queue throughput, coroutine wakeup cost, RNG and statistics
 * primitives, and the switch forwarding fast path.  These bound the
 * software engine's achievable event rate (the quantity DIABLO's FPGA
 * acceleration improves by two orders of magnitude).
 */

#include <benchmark/benchmark.h>

#include "core/random.hh"
#include "core/simulator.hh"
#include "core/stats.hh"
#include "net/link.hh"
#include "switchm/voq_switch.hh"

using namespace diablo;
using namespace diablo::time_literals;

namespace {

void
BM_EventScheduleExecute(benchmark::State &state)
{
    Simulator sim;
    int64_t n = 0;
    for (auto _ : state) {
        sim.schedule(1_ns, [&n] { ++n; });
        sim.run();
    }
    benchmark::DoNotOptimize(n);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventScheduleExecute);

void
BM_EventQueueDepth(benchmark::State &state)
{
    const int depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        int64_t n = 0;
        for (int i = 0; i < depth; ++i) {
            sim.schedule(SimTime::ns(i % 97), [&n] { ++n; });
        }
        sim.run();
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EventQueueDepth)->Arg(1024)->Arg(65536);

Task<>
sleeperLoop(Simulator &sim, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await sim.sleep(1_ns);
    }
}

void
BM_CoroutineSleepWake(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        sim.spawn(sleeperLoop(sim, 1000));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineSleepWake);

void
BM_RngUniform(benchmark::State &state)
{
    Rng rng(42);
    double acc = 0;
    for (auto _ : state) {
        acc += rng.uniform();
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void
BM_GeneralizedPareto(benchmark::State &state)
{
    Rng rng(42);
    double acc = 0;
    for (auto _ : state) {
        acc += rng.generalizedPareto(0, 214.476, 0.348238);
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeneralizedPareto);

void
BM_SampleSetPercentile(benchmark::State &state)
{
    SampleSet s;
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        s.record(rng.exponential(100));
    }
    for (auto _ : state) {
        // Insert invalidates the sort cache; this measures the
        // sort + interpolate cost benches pay once per run.
        s.record(1.0);
        benchmark::DoNotOptimize(s.percentile(99));
    }
}
BENCHMARK(BM_SampleSetPercentile);

void
BM_SwitchForwarding(benchmark::State &state)
{
    Simulator sim;
    switchm::SwitchParams params;
    params.num_ports = 16;
    params.buffer_per_port_bytes = 1 << 20;
    params.port_latency = 1_us;
    switchm::VoqSwitch sw(sim, params);

    struct NullSink : net::PacketSink {
        void receive(net::PacketPtr) override {}
    } sink;
    std::vector<std::unique_ptr<net::Link>> links;
    for (uint32_t i = 0; i < 16; ++i) {
        links.push_back(std::make_unique<net::Link>(
            sim, "out", Bandwidth::gbps(10), 0_ns));
        links.back()->connectTo(sink);
        sw.attachOutLink(i, *links.back());
    }

    uint64_t pkts = 0;
    for (auto _ : state) {
        auto p = net::makePacket();
        p->flow.proto = net::Proto::Udp;
        p->payload_bytes = 1400;
        p->route = net::SourceRoute(
            {static_cast<uint16_t>(pkts % 16)});
        p->last_bit = sim.now();
        sw.inPort(static_cast<uint32_t>(pkts % 16))
            .receive(std::move(p));
        sim.run();
        ++pkts;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchForwarding);

} // namespace

BENCHMARK_MAIN();
