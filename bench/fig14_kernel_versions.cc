/**
 * @file
 * Figure 14: "Impact of OS kernel versions on the 2,000-node system" —
 * Linux 2.6.39.3 vs 3.5.7 with the same 10 Gbps interconnect and server
 * hardware.
 *
 * Shape targets (paper SS4.2): significant responsiveness improvements
 * on 3.5.7 — average request latency almost halved — and a softer tail
 * thanks to the better scheduler and more efficient networking stack.
 * "OS optimizations play a critical role in the performance of
 * distributed applications."
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Figure 14: kernel version impact at 2000 nodes (10 Gbps)",
           "Fig. 14 - Linux 2.6.39.3 vs 3.5.7, 95th+ pct CDF");

    Table t({"kernel", "mean (us)", "p50", "p95", "p99", "p99.9 (us)"});
    double means[2];
    int i = 0;

    for (const char *kver : {"2.6.39.3", "3.5.7"}) {
        apps::McExperimentParams p = mcConfig(1984, true, true);
        p.cluster.kernel_profile = os::KernelProfile::byName(kver);
        Simulator sim;
        apps::McExperiment exp(sim, p);
        exp.run();
        const SampleSet &lat = exp.result().latency_us;
        t.addRow({kver, Table::cell("%.1f", lat.mean()),
                  Table::cell("%.1f", lat.percentile(50)),
                  Table::cell("%.1f", lat.percentile(95)),
                  Table::cell("%.1f", lat.percentile(99)),
                  Table::cell("%.1f", lat.percentile(99.9))});
        means[i++] = lat.mean();
        analysis::printCdf(Table::cell("%s tail (p95+)", kver),
                           lat.tailCdf(95.0), 12);
    }
    t.print();

    std::printf("\naverage latency ratio 2.6.39.3 / 3.5.7 = %.2fx "
                "(paper: \"the average\nrequest latency is almost "
                "halved\" on the newer kernel)\n", means[0] / means[1]);
    return 0;
}
