/**
 * @file
 * Figure 9: "Client latency CDF on a 120-node real cluster vs. DIABLO"
 * — memcached 1.4.15 vs 1.4.17 at 120 nodes.
 *
 * Two pairs of series: the clean simulated cluster (like DIABLO's), and
 * a "physical-cluster-like" variant with background daemons enabled —
 * the paper notes its simulation is a more ideal environment than the
 * shared physical cluster, with fewer requests falling into the tail.
 */

#include <algorithm>

#include "apps/background_noise.hh"
#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;

namespace {

SampleSet
run120(int version, bool with_noise)
{
    apps::McExperimentParams p;
    p.cluster = sim::ClusterParams::gige1us();
    p.cluster.topo.servers_per_rack = 15;
    p.cluster.topo.racks_per_array = 8;
    p.cluster.topo.num_arrays = 1;
    p.num_servers = 8;
    p.server.udp = false;
    p.server.version = version;
    p.client.udp = false;
    p.client.requests = requestsPerClient();
    p.client.preconnect = false; // version delta lives in the accept path

    Simulator sim;
    apps::McExperiment exp(sim, p);
    if (with_noise) {
        apps::NoiseParams np;
        apps::installBackgroundNoiseEverywhere(exp.cluster(), np);
    }
    exp.run();
    return exp.result().latency_us;
}

} // namespace

int
main()
{
    banner("Figure 9: 120-node client latency CDF, memcached versions",
           "Fig. 9 - 1.4.15 vs 1.4.17, simulated vs physical-like");

    for (bool noise : {false, true}) {
        std::printf("\n=== %s ===\n",
                    noise ? "physical-cluster-like (background daemons)"
                          : "DIABLO-like (clean simulation)");
        for (int version : {1415, 1417}) {
            SampleSet lat = run120(version, noise);
            std::printf("memcached 1.4.%d: %s\n", version % 100,
                        analysis::latencySummary(lat).c_str());
            analysis::printCdf(
                analysis::Table::cell("1.4.%d latency (us), tail from "
                                      "p98", version % 100),
                lat.tailCdf(98.0), 16);

            const double frac_slow =
                1.0 - static_cast<double>(std::count_if(
                          lat.raw().begin(), lat.raw().end(),
                          [&](double v) {
                              return v < 10.0 * lat.percentile(50);
                          })) /
                          static_cast<double>(lat.count());
            std::printf("  fraction >10x median: %.3f%%   (paper: <0.1%% "
                        "of requests finish orders of magnitude slower)\n",
                        100.0 * frac_slow);
        }
    }

    std::printf("\nshape targets (paper Fig. 9): 1.4.17 has a slightly "
                "better tail than\n1.4.15; the clean simulation has "
                "fewer tail requests than the shared\nphysical "
                "cluster.\n");
    return 0;
}
