/**
 * @file
 * Figure 11: "95th-100th percentile CDF of client latency at different
 * scales on a 1 Gbps interconnect running UDP" — 500 / 1000 / 2000
 * nodes.
 *
 * Shape target: the tail worsens dramatically with scale; the paper
 * reports the 99th percentile of the 2000-node system is more than an
 * order of magnitude worse than the 500-node system, matching Google's
 * tail-at-scale observations.
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Figure 11: latency tail vs system scale (1 Gbps, UDP)",
           "Fig. 11 - 95th-100th pct CDF at 500/1000/2000 nodes");

    const std::vector<uint32_t> scales = {496, 992, 1984};
    Table t({"nodes", "p95 (us)", "p99 (us)", "p99.9 (us)", "max (us)"});
    std::vector<double> p99s;

    for (uint32_t nodes : scales) {
        apps::McExperimentParams p = mcConfig(nodes, true, false);
        Simulator sim;
        apps::McExperiment exp(sim, p);
        exp.run();
        const SampleSet &lat = exp.result().latency_us;

        t.addRow({Table::cell("%u", nodes),
                  Table::cell("%.0f", lat.percentile(95)),
                  Table::cell("%.0f", lat.percentile(99)),
                  Table::cell("%.0f", lat.percentile(99.9)),
                  Table::cell("%.0f", lat.max())});
        p99s.push_back(lat.percentile(99));

        analysis::printCdf(Table::cell("%u-node tail (p95+)", nodes),
                           lat.tailCdf(95.0), 14);
    }
    t.print();

    std::printf("\n99th percentile growth 500 -> 2000 nodes: %.1fx "
                "(paper: more than an order of magnitude; the extra "
                "aggregation level\nis the driver)\n",
                p99s.back() / p99s.front());
    return 0;
}
