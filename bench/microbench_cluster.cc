/**
 * @file
 * Full-stack cluster benchmark: wall-clock cost of simulating the same
 * incast workload three ways —
 *
 *  - single:      the whole array on one Simulator (the pre-sharding
 *                 baseline, one event queue, one host thread);
 *  - sharded/seq: the rack/switch-partitioned build driven by the
 *                 sequential reference engine (adds barrier + channel
 *                 drain bookkeeping, still one host thread);
 *  - sharded/par: the same partitioned build on the pooled parallel
 *                 engine (one worker thread per partition).
 *
 * This is the software analog of the paper's Table 6 host-performance
 * question: what does partitioning cost, and what does parallel
 * execution of the partitions buy back?  Items processed = simulated
 * events, so items_per_second is engine event throughput.  Results are
 * appended to BENCH_cluster.json (see bench/bench_json.hh).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "apps/incast.hh"
#include "bench/bench_json.hh"
#include "sim/cluster.hh"

using namespace diablo;
using namespace diablo::time_literals;

namespace {

/**
 * @p racks racks of @p servers_per_rack servers under one array switch.
 * The 4x4 shape keeps an iteration in the tens of milliseconds; the 8x8
 * shape carries ~5x the per-quantum work, which is what decides whether
 * parallel partitions amortize their barrier cost.
 */
sim::ClusterParams
benchParams(uint32_t racks, uint32_t servers_per_rack)
{
    sim::ClusterParams p = sim::ClusterParams::gige1us();
    p.topo.servers_per_rack = servers_per_rack;
    p.topo.racks_per_array = racks;
    p.topo.num_arrays = 1;
    return p;
}

apps::IncastParams
benchWorkload()
{
    apps::IncastParams ip;
    ip.block_bytes = 64 * 1024;
    ip.iterations = 4;
    ip.warmup_iterations = 1;
    return ip;
}

std::vector<net::NodeId>
crossRackServers(sim::Cluster &cluster)
{
    // Client is node 0; all of racks 1..3 serve.
    std::vector<net::NodeId> servers;
    for (net::NodeId n = cluster.params().topo.servers_per_rack;
         n < cluster.size(); ++n) {
        servers.push_back(n);
    }
    return servers;
}

constexpr SimTime kHorizon = SimTime::sec(10);

void
BM_ClusterIncastSingleSim(benchmark::State &state)
{
    const auto racks = static_cast<uint32_t>(state.range(0));
    const auto spr = static_cast<uint32_t>(state.range(1));
    uint64_t events = 0;
    for (auto _ : state) {
        Simulator sim;
        sim::Cluster cluster(sim, benchParams(racks, spr));
        apps::IncastApp app(cluster, benchWorkload(), 0,
                            crossRackServers(cluster));
        app.install();
        sim.run();
        if (!app.result().done) {
            state.SkipWithError("incast did not complete");
            return;
        }
        events += sim.executedEvents();
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_ClusterIncastSingleSim)
    ->Args({4, 4})
    ->Args({8, 8})
    ->ArgNames({"racks", "spr"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_ClusterIncastSharded(benchmark::State &state)
{
    const bool parallel = state.range(0) != 0;
    const auto racks = static_cast<uint32_t>(state.range(1));
    const auto spr = static_cast<uint32_t>(state.range(2));
    // Worker cap for the fused parallel engine; 0 = hardware default.
    // threads=1 is the degenerate-fusion case that must stay within
    // striking distance of the sequential reference even on a 1-core
    // runner (guarded in CI by tools/bench_guard.py).
    const auto threads = static_cast<size_t>(state.range(3));
    uint64_t events = 0;
    uint64_t quanta = 0;
    uint64_t workers = 0;
    for (auto _ : state) {
        const sim::ClusterParams params = benchParams(racks, spr);
        fame::PartitionSet ps(sim::Cluster::partitionsRequired(params));
        ps.setParallelism(threads);
        sim::Cluster cluster(ps, params);
        apps::IncastApp app(cluster, benchWorkload(), 0,
                            crossRackServers(cluster));
        app.install();
        if (parallel) {
            ps.runParallel(kHorizon);
        } else {
            ps.runSequential(kHorizon);
        }
        if (!app.result().done) {
            state.SkipWithError("incast did not complete");
            return;
        }
        events += ps.totalExecutedEvents();
        quanta = ps.lastRunQuanta();
        workers = parallel ? ps.lastRunWorkers() : 1;
    }
    state.counters["quanta"] =
        benchmark::Counter(static_cast<double>(quanta));
    state.counters["workers"] =
        benchmark::Counter(static_cast<double>(workers));
    state.SetItemsProcessed(static_cast<int64_t>(events));
}
// Real time is the comparable axis (the parallel engine spends its
// cycles on pooled worker threads, not the benchmark thread); process
// CPU time additionally exposes the total host cost of the barriers.
BENCHMARK(BM_ClusterIncastSharded)
    ->Args({0, 4, 4, 0})
    ->Args({1, 4, 4, 1})
    ->Args({1, 4, 4, 0})
    ->Args({0, 8, 8, 0})
    ->Args({1, 8, 8, 1})
    ->Args({1, 8, 8, 2})
    ->Args({1, 8, 8, 0})
    ->ArgNames({"par", "racks", "spr", "threads"})
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

// Custom main: console output plus a JSON trajectory entry appended to
// BENCH_cluster.json, so partitioned-cluster host performance is
// tracked across PRs alongside the engine microbenchmarks.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::ConsoleReporter console;
    diablo::bench_json::TrajectoryReporter trajectory;
    diablo::bench_json::TeeReporter tee(console, trajectory);
    benchmark::RunSpecifiedBenchmarks(&tee);
    const std::string path =
        diablo::bench_json::TrajectoryReporter::defaultPath(
            "BENCH_cluster.json");
    if (!trajectory.append(path)) {
        fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
    benchmark::Shutdown();
    return 0;
}
