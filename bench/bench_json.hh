#ifndef DIABLO_BENCH_BENCH_JSON_HH_
#define DIABLO_BENCH_BENCH_JSON_HH_

/**
 * @file
 * JSON trajectory emitter for google-benchmark runs.
 *
 * Engine throughput is this project's headline number (the quantity
 * DIABLO's FPGAs improve by two orders of magnitude), so each
 * microbenchmark run is appended to a trajectory file — by default
 * `BENCH_engine.json` in the working directory, overridable with the
 * DIABLO_BENCH_JSON environment variable — as one JSON object per run:
 *
 *   [
 *     { "label": "...", "unix_time": 1754550000,
 *       "benchmarks": [
 *         { "name": "BM_EventScheduleExecute",
 *           "items_per_second": 6.8e7,
 *           "real_ns_per_iter": 14.9,
 *           "iterations": 47316258 }, ... ] },
 *     ...
 *   ]
 *
 * Future PRs compare their numbers against the trajectory instead of
 * rediscovering the baseline.  An optional DIABLO_BENCH_LABEL names the
 * run (e.g. a git revision).
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace diablo {
namespace bench_json {

/** Collects per-benchmark results; append() writes the trajectory. */
class TrajectoryReporter : public benchmark::BenchmarkReporter {
  public:
    bool
    ReportContext(const Context &) override
    {
        return true;
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration) {
                continue; // skip aggregates
            }
            Entry e;
            e.name = run.benchmark_name();
            e.iterations = static_cast<uint64_t>(run.iterations);
            if (run.iterations > 0) {
                e.real_ns_per_iter = run.real_accumulated_time * 1e9 /
                                     static_cast<double>(run.iterations);
            }
            auto it = run.counters.find("items_per_second");
            if (it != run.counters.end()) {
                e.items_per_second = it->second.value;
            }
            // Carry every other user counter (e.g. allocs_per_packet)
            // so regression guards can check them from the trajectory.
            for (const auto &kv : run.counters) {
                if (kv.first != "items_per_second") {
                    e.counters.emplace_back(kv.first, kv.second.value);
                }
            }
            entries_.push_back(std::move(e));
        }
    }

    /**
     * Default trajectory path, honoring DIABLO_BENCH_JSON; @p fallback
     * lets each microbenchmark binary keep its own trajectory file.
     */
    static std::string
    defaultPath(const char *fallback = "BENCH_engine.json")
    {
        const char *env = std::getenv("DIABLO_BENCH_JSON");
        return env && *env ? env : fallback;
    }

    /**
     * Append this run as one object to the JSON array in @p path,
     * creating the file if needed.  Returns false on I/O failure (the
     * benchmark results were already printed; losing the trajectory
     * entry is not fatal).
     */
    bool
    append(const std::string &path) const
    {
        std::ostringstream obj;
        obj << "  {\n";
        const char *label = std::getenv("DIABLO_BENCH_LABEL");
        if (label && *label) {
            obj << "    \"label\": \"" << escape(label) << "\",\n";
        }
        obj << "    \"unix_time\": "
            << static_cast<long long>(std::time(nullptr)) << ",\n"
            << "    \"benchmarks\": [\n";
        for (size_t i = 0; i < entries_.size(); ++i) {
            const Entry &e = entries_[i];
            obj << "      { \"name\": \"" << escape(e.name) << "\""
                << ", \"items_per_second\": " << e.items_per_second
                << ", \"real_ns_per_iter\": " << e.real_ns_per_iter
                << ", \"iterations\": " << e.iterations;
            for (const auto &kv : e.counters) {
                obj << ", \"" << escape(kv.first) << "\": " << kv.second;
            }
            obj << " }" << (i + 1 < entries_.size() ? ",\n" : "\n");
        }
        obj << "    ]\n  }";

        // Splice into the existing array (text-level append: strip the
        // trailing ']' and re-close), or start a fresh array.
        std::string existing;
        {
            std::ifstream in(path);
            if (in) {
                std::ostringstream ss;
                ss << in.rdbuf();
                existing = ss.str();
            }
        }
        const size_t close = existing.find_last_of(']');
        std::ofstream out(path, std::ios::trunc);
        if (!out) {
            return false;
        }
        if (close == std::string::npos) {
            out << "[\n" << obj.str() << "\n]\n";
        } else {
            std::string head = existing.substr(0, close);
            while (!head.empty() &&
                   (head.back() == '\n' || head.back() == ' ')) {
                head.pop_back();
            }
            out << head << ",\n" << obj.str() << "\n]\n";
        }
        return static_cast<bool>(out);
    }

  private:
    struct Entry {
        std::string name;
        double items_per_second = 0;
        double real_ns_per_iter = 0;
        uint64_t iterations = 0;
        std::vector<std::pair<std::string, double>> counters;
    };

    static std::string
    escape(const std::string &s)
    {
        std::string r;
        r.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\') {
                r.push_back('\\');
            }
            r.push_back(c);
        }
        return r;
    }

    std::vector<Entry> entries_;
};

/**
 * Display reporter that forwards to two reporters — lets the trajectory
 * collector ride along with normal console output without requiring
 * --benchmark_out.
 */
class TeeReporter : public benchmark::BenchmarkReporter {
  public:
    TeeReporter(benchmark::BenchmarkReporter &a,
                benchmark::BenchmarkReporter &b)
        : a_(a), b_(b)
    {
    }

    bool
    ReportContext(const Context &context) override
    {
        const bool ra = a_.ReportContext(context);
        const bool rb = b_.ReportContext(context);
        return ra && rb;
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        a_.ReportRuns(runs);
        b_.ReportRuns(runs);
    }

    void
    Finalize() override
    {
        a_.Finalize();
        b_.Finalize();
    }

  private:
    benchmark::BenchmarkReporter &a_;
    benchmark::BenchmarkReporter &b_;
};

} // namespace bench_json
} // namespace diablo

#endif // DIABLO_BENCH_BENCH_JSON_HH_
