/**
 * @file
 * Cost comparison (paper SS1 and SS3.4): the DIABLO prototype and its
 * 2015 scaling projection versus an equivalent real WSC array.
 */

#include "bench/bench_util.hh"
#include "fame/cost_model.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Cost model: DIABLO vs a real WSC array",
           "SS1/SS3.4 - $140K prototype; $150K @32K nodes; $36M CAPEX + "
           "$800K/mo OPEX array");

    fame::CostModel m;
    const fame::WscCostParams wsc{};

    Table t({"system", "nodes", "capex", "opex/month"});

    // The built prototype: 9 BEE3 boards.
    {
        auto p = fame::DiabloCostParams::bee3Prototype();
        double capex = 9 * p.board_cost_usd + p.infrastructure_usd;
        t.addRow({"DIABLO prototype (9 BEE3 boards)", "2976",
                  Table::cell("$%.0fK", capex / 1e3), "~$1K (1.5 kW)"});
    }
    // Scaled BEE3 system from the paper: 13 more boards.
    {
        auto p = fame::DiabloCostParams::bee3Prototype();
        double capex = 22 * p.board_cost_usd + p.infrastructure_usd;
        t.addRow({"DIABLO scaled BEE3 (22 boards)", "11904",
                  Table::cell("$%.0fK", capex / 1e3), "~$2K"});
    }
    // 2015 projection.
    {
        auto p = fame::DiabloCostParams::board2015();
        t.addRow({"DIABLO 2015 (32 x 20nm FPGAs)", "32000",
                  Table::cell("$%.0fK",
                              m.diabloCapexUsd(32000, p) / 1e3),
                  "~$2K"});
    }
    // The real arrays.
    for (uint32_t nodes : {11904u, 32000u}) {
        t.addRow({"real WSC array", Table::cell("%u", nodes),
                  Table::cell("$%.1fM", m.wscCapexUsd(nodes, wsc) / 1e6),
                  Table::cell("$%.0fK/mo",
                              m.wscOpexPerMonthUsd(nodes, wsc) / 1e3)});
    }
    t.print();

    std::printf("\npaper anchors: $15K/BEE3, ~$140K prototype; $150K for "
                "a 32,000-node\n2015 system; $36M CAPEX + $800K/month "
                "OPEX for the equivalent real array\n(reproduced above); "
                "CAPEX ratio at 32K nodes: %.0fx.\n",
                m.wscCapexUsd(32000, wsc) /
                    m.diabloCapexUsd(32000,
                                     fame::DiabloCostParams::board2015()));
    return 0;
}
