/**
 * @file
 * Figure 13: "Comparing TCP vs UDP on CDFs of client request latency at
 * different scale with different interconnect" — {500, 1000, 2000}
 * nodes x {1 Gbps, 10 Gbps} x {TCP, UDP}.
 *
 * Shape targets (paper SS4.2): at 500 nodes on 1 Gbps, UDP is the clear
 * winner; the advantage disappears by 1000 nodes and the conclusion is
 * completely reversed at 2000 nodes (TCP's transport-level recovery
 * beats the client's 250 ms UDP retry once congestion losses appear at
 * the aggregation layers); on the 10 Gbps interconnect there is much
 * less difference between the protocols.
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Figure 13: TCP vs UDP latency CDFs across scales",
           "Fig. 13(a)-(f) - 500/1000/2000 nodes x 1G/10G");

    Table t({"config", "proto", "p50", "p97", "p99", "p99.9", "max (us)",
             "udp retries"});

    for (bool tengig : {false, true}) {
        for (uint32_t nodes : {496u, 992u, 1984u}) {
            SampleSet tails[2];
            for (bool udp : {true, false}) {
                apps::McExperimentParams p = mcConfig(nodes, udp, tengig);
                Simulator sim;
                apps::McExperiment exp(sim, p);
                exp.run();
                const auto &r = exp.result();
                t.addRow({Table::cell("%u-node %s", nodes,
                                      tengig ? "10G" : "1G"),
                          udp ? "UDP" : "TCP",
                          Table::cell("%.0f", r.latency_us.percentile(50)),
                          Table::cell("%.0f", r.latency_us.percentile(97)),
                          Table::cell("%.0f", r.latency_us.percentile(99)),
                          Table::cell("%.0f",
                                      r.latency_us.percentile(99.9)),
                          Table::cell("%.0f", r.latency_us.max()),
                          Table::cell("%llu",
                                      static_cast<unsigned long long>(
                                          r.udp_retries))});
                tails[udp ? 0 : 1] = r.latency_us;
            }
            std::printf("\n--- %u nodes, %s: 97th+ percentile tails ---\n",
                        nodes, tengig ? "10 Gbps" : "1 Gbps");
            analysis::printCdf("UDP", tails[0].tailCdf(97.0), 10);
            analysis::printCdf("TCP", tails[1].tailCdf(97.0), 10);
        }
    }
    t.print();

    std::printf(
        "\nshape targets: UDP wins at 500-node/1G (lower per-request "
        "overhead, no\nlosses); at 2000-node/1G the far tail reverses "
        "(UDP's 250 ms client retry\nvs TCP's 200 ms min-RTO transport "
        "recovery); at 10G both protocols are\nnear-identical.\n");
    return 0;
}
