/**
 * @file
 * Figure 6(a): "Reproducing the goodput of TCP Incast ... 1 Gbps
 * shallow-buffer switch."
 *
 * Three series, mirroring the paper's comparison:
 *  - DIABLO model: the abstract VOQ switch with 4 KB per-port buffers
 *    (Nortel 5500-like), 1 us port-to-port latency — collapses faster
 *    than shared-buffer hardware, exactly as the paper observed;
 *  - hardware-like: shared-dynamic packet memory (Asante IC35516-class
 *    16-port shared pool), which collapses later and recovers higher;
 *  - ns2-like: simple output-queued drop-tail switch baseline.
 *
 * Shape targets (paper SS4.1): ~800-950 Mbps before collapse; fast
 * collapse for the shallow VOQ config; throughput recovery trend as the
 * server count keeps growing after collapse.
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Figure 6(a): TCP Incast goodput, 1 Gbps shallow buffers",
           "Fig. 6(a) - DIABLO vs shared-buffer hardware vs ns2-like");

    const uint32_t iters = incastIterations();
    const std::vector<uint32_t> counts = {1, 2, 4, 6, 8, 12, 16, 20, 24};

    Table t({"servers", "DIABLO VOQ 4KB (Mbps)",
             "shared-buffer HW-like (Mbps)", "output-queue ns2-like "
             "(Mbps)"});
    analysis::Series s_voq{"DIABLO VOQ 4KB/port", {}};
    analysis::Series s_shared{"shared-dynamic 48KB/port pool", {}};
    analysis::Series s_oq{"output-queue drop-tail 4KB", {}};

    for (uint32_t n : counts) {
        auto voq = runIncast(n, switchm::BufferPolicy::Partitioned, 4096,
                             false, 4.0, false, iters);
        auto shared = runIncast(n, switchm::BufferPolicy::SharedDynamic,
                                49152, false, 4.0, false, iters);
        auto oq = runIncast(n, switchm::BufferPolicy::Partitioned, 4096,
                            false, 4.0, false, iters,
                            topo::SwitchModelKind::OutputQueue);
        t.addRow({Table::cell("%u", n),
                  Table::cell("%.1f", voq.goodputMbps()),
                  Table::cell("%.1f", shared.goodputMbps()),
                  Table::cell("%.1f", oq.goodputMbps())});
        s_voq.points.emplace_back(n, voq.goodputMbps());
        s_shared.points.emplace_back(n, shared.goodputMbps());
        s_oq.points.emplace_back(n, oq.goodputMbps());
    }
    t.print();
    analysis::asciiPlot("goodput (Mbps) vs number of servers",
                        {s_voq, s_shared, s_oq}, 64, 16, false);

    std::printf(
        "\npaper anchors: ~800 Mbps before collapse on real hardware; the"
        "\nDIABLO VOQ model collapses faster than the shared-buffer"
        "\nhardware but captures the post-collapse recovery trend.\n");
    return 0;
}
