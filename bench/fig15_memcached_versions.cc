/**
 * @file
 * Figure 15: "Impact of memcached versions on the latency CDF" —
 * 1.4.15 vs 1.4.17 (the accept4 syscall saving) at 500 and 2,000
 * nodes over TCP.
 *
 * Shape targets (paper SS4.2): at 500 nodes the versions are nearly
 * indistinguishable (the paper measured only ~8 us at the 99th
 * percentile); at 2,000 nodes the benefit of fewer syscalls per new
 * connection becomes more apparent — scale amplifies the latency-tail
 * effect of a single syscall's difference.
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Figure 15: memcached 1.4.15 vs 1.4.17 at 500 / 2000 nodes",
           "Fig. 15 - accept4 connection-path saving, TCP");

    Table t({"nodes", "version", "p50 (us)", "p99 (us)",
             "1st-req p50/p99 (us)", "server CPU (ms)"});

    for (uint32_t nodes : {496u, 1984u}) {
        double p99[2];
        int i = 0;
        for (int version : {1415, 1417}) {
            apps::McExperimentParams p = mcConfig(nodes, false, false);
            p.server.version = version;
            // Connection setup must land in measured latencies: clients
            // open connections lazily (first request to each server).
            p.client.preconnect = false;
            Simulator sim;
            apps::McExperiment exp(sim, p);
            exp.run();
            const SampleSet &lat = exp.result().latency_us;

            SimTime server_cpu;
            for (net::NodeId s : exp.serverNodes()) {
                server_cpu += exp.cluster().kernel(s).cpu().totalBusyTime();
            }
            const SampleSet &first = exp.result().first_request_us;
            t.addRow({Table::cell("%u", nodes),
                      Table::cell("1.4.%d", version % 100),
                      Table::cell("%.0f", lat.percentile(50)),
                      Table::cell("%.0f", lat.percentile(99)),
                      Table::cell("%.1f/%.1f", first.percentile(50),
                                  first.percentile(99)),
                      Table::cell("%.1f", server_cpu.asMillis())});
            p99[i++] = first.percentile(99);

            analysis::printCdf(
                Table::cell("%u-node 1.4.%d tail (p97+)", nodes,
                            version % 100),
                lat.tailCdf(97.0), 10);
        }
        std::printf("first-request p99 delta (1.4.15 - 1.4.17) at %u "
                    "nodes: %.1f us\n", nodes, p99[0] - p99[1]);
    }
    t.print();

    std::printf(
        "\npaper anchors: ~8 us p99 delta at 500 nodes; 345 us vs 145 us "
        "p99 at\n2,000 nodes.  Our behavioural model reproduces the "
        "direction and the\nscale amplification; the absolute gap is "
        "smaller because only the\nmechanistic accept-path cost is "
        "modeled (see EXPERIMENTS.md).\n");
    return 0;
}
