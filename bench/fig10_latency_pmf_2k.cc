/**
 * @file
 * Figure 10: "PMF of client request latency at 2000-node on DIABLO using
 * UDP" — probability mass over log-spaced latency bins, classified by
 * the number of physical switch levels a request traverses (local /
 * 1-hop / 2-hop), for both the 1 Gbps and 10 Gbps interconnects.
 *
 * Shape targets: the majority of requests finish in under ~100 us; a
 * small number finish more than two orders of magnitude slower; hop
 * count increases latency variation; 2-hop requests dominate the
 * overall distribution at this scale.
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;

int
main()
{
    banner("Figure 10: 2000-node UDP client latency PMF by hop count",
           "Fig. 10 - PMF over log bins, 1 Gbps vs 10 Gbps");

    for (bool tengig : {false, true}) {
        apps::McExperimentParams p = mcConfig(1984, true, tengig);
        Simulator sim;
        apps::McExperiment exp(sim, p);
        exp.run();
        const auto &r = exp.result();

        std::printf("\n=== %s interconnect ===\n",
                    tengig ? "10 Gbps / 100 ns" : "1 Gbps / 1 us");
        const char *names[3] = {"local", "1-hop", "2-hop"};
        for (int h = 0; h < 3; ++h) {
            const SampleSet &s = r.latency_us_by_hop[h];
            std::printf("%-6s %s\n", names[h],
                        analysis::latencySummary(s).c_str());
        }
        std::printf("overall %s\n",
                    analysis::latencySummary(r.latency_us).c_str());
        analysis::printPmf("overall latency (us), log bins",
                           r.latency_us.logPmf(4));

        const double share_2hop =
            static_cast<double>(r.latency_us_by_hop[2].count()) /
            static_cast<double>(r.latency_us.count());
        std::printf("2-hop share of all requests: %.0f%%  (paper: 2-hop "
                    "dominates at scale)\n", 100.0 * share_2hop);
        const double under100 =
            static_cast<double>(std::count_if(
                r.latency_us.raw().begin(), r.latency_us.raw().end(),
                [](double v) { return v < 100.0; })) /
            static_cast<double>(r.latency_us.count());
        std::printf("fraction under 100 us: %.0f%%  (paper: the "
                    "majority)\n", 100.0 * under100);
    }
    return 0;
}
