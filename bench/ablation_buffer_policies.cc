/**
 * @file
 * Ablation: switch packet-buffer architecture (the design axis DIABLO
 * makes runtime-configurable, SS3.3).  Runs the same 1 Gbps incast
 * workload across buffer policies and sizes — quantifying how much of
 * the TCP Incast story is the buffer organization itself.
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Ablation: buffer policy x size under incast (1 Gbps)",
           "design-space study enabled by runtime-configurable "
           "switch models");

    const uint32_t iters = incastIterations();
    const uint32_t n = 12; // server count in the collapse region

    Table t({"policy", "per-port bytes", "goodput (Mbps)",
             "iterations > 100ms"});
    struct Row {
        const char *name;
        switchm::BufferPolicy policy;
        uint64_t bytes;
    };
    const std::vector<Row> rows = {
        {"partitioned", switchm::BufferPolicy::Partitioned, 4096},
        {"partitioned", switchm::BufferPolicy::Partitioned, 16384},
        {"partitioned", switchm::BufferPolicy::Partitioned, 65536},
        {"partitioned", switchm::BufferPolicy::Partitioned, 1 << 20},
        {"shared", switchm::BufferPolicy::Shared, 16384},
        {"shared", switchm::BufferPolicy::Shared, 65536},
        {"shared_dynamic", switchm::BufferPolicy::SharedDynamic, 16384},
        {"shared_dynamic", switchm::BufferPolicy::SharedDynamic, 65536},
    };
    for (const auto &r : rows) {
        auto res = runIncast(n, r.policy, r.bytes, false, 4.0, false,
                             iters);
        int stalled = 0;
        for (double it_us : res.iteration_us.raw()) {
            if (it_us > 100000.0) {
                ++stalled;
            }
        }
        t.addRow({r.name, Table::cell("%llu",
                                      static_cast<unsigned long long>(
                                          r.bytes)),
                  Table::cell("%.1f", res.goodputMbps()),
                  Table::cell("%d/%zu", stalled,
                              res.iteration_us.count())});
    }
    t.print();

    std::printf("\ntakeaways: per-port partitions collapse earliest; "
                "shared pools with\ndynamic thresholds postpone collapse "
                "(the paper's hardware comparison);\ndeep buffers avoid "
                "RTO stalls entirely at this fan-in.\n");
    return 0;
}
