/**
 * @file
 * Ablation: NIC model features (SS3.3's "advanced features such as
 * Zero-copy, RX/TX interrupt mitigation and the NAPI polling
 * interface").  Quantifies each feature's effect:
 *  - interrupt mitigation (rx ITR) trades median latency for CPU;
 *  - zero-copy raises the CPU-bound TCP send ceiling.
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Ablation: NIC interrupt mitigation and zero-copy",
           "NIC model features from SS3.3");

    // --- interrupt mitigation vs memcached latency (496 nodes, UDP) ---
    Table t({"rx ITR (us)", "p50 (us)", "p99 (us)",
             "softirq rounds/node"});
    for (double itr_us : {0.0, 25.0, 100.0}) {
        apps::McExperimentParams p = mcConfig(496, true, false);
        p.cluster.nic.rx_itr = SimTime::microseconds(itr_us);
        Simulator sim;
        apps::McExperiment exp(sim, p);
        exp.run();
        const SampleSet &lat = exp.result().latency_us;
        uint64_t softirqs = 0;
        for (uint32_t nid = 0; nid < exp.cluster().size(); ++nid) {
            softirqs += exp.cluster().kernel(nid).stats().softirq_rounds;
        }
        t.addRow({Table::cell("%.0f", itr_us),
                  Table::cell("%.1f", lat.percentile(50)),
                  Table::cell("%.1f", lat.percentile(99)),
                  Table::cell("%.0f", static_cast<double>(softirqs) /
                                          exp.cluster().size())});
    }
    t.print();
    std::printf("interrupt coalescing adds its full delay to the median "
                "of small-RPC\nworkloads while cutting interrupt/softirq "
                "load — the classic trade.\n\n");

    // --- zero-copy vs TCP send ceiling (1 server, 10 Gbps) ---
    Table z({"zero-copy", "single-flow goodput (Mbps)"});
    for (bool zc : {true, false}) {
        Simulator sim;
        sim::ClusterParams cp = sim::ClusterParams::tengig100ns();
        cp.topo.servers_per_rack = 2;
        cp.topo.racks_per_array = 1;
        cp.topo.num_arrays = 1;
        cp.nic.zero_copy = zc;
        sim::Cluster cluster(sim, cp);
        apps::IncastParams ip;
        ip.block_bytes = 256 * 1024;
        ip.iterations = incastIterations();
        apps::IncastApp app(cluster, ip, 0, {1});
        app.install();
        sim.run();
        z.addRow({zc ? "on" : "off",
                  analysis::Table::cell("%.0f",
                                        app.result().goodputMbps())});
    }
    z.print();
    std::printf("zero-copy (scatter/gather DMA) removes the per-byte "
                "user->kernel copy\nfrom the CPU-bound send path "
                "(paper: \"essential for any high-performance\n"
                "networking interface\").\n");
    return 0;
}
