/**
 * @file
 * Microbenchmarks of the cross-process transport layer — the software
 * analog of DIABLO's inter-FPGA serial links (§3.2) — isolating the
 * three numbers that decide whether splitting an engine across
 * processes pays:
 *
 *  - BM_ShmRingRoundTrip: raw record round-trip time over a
 *    file-backed shared-memory ring pair (one ping-pong per iteration,
 *    so real_ns_per_iter IS the RTT), echo peer on a second thread.
 *  - BM_CoupledSyncRate: two coupled PartitionSets exchanging nothing
 *    but window SYNC records (skipping off, empty partitions) — the
 *    pure synchronization cost of the coupled barrier; items/s = sync
 *    messages per second observed by the leader side.
 *  - BM_CoupledIncastSeq / BM_CoupledIncastPair: the 4-rack incast
 *    model run whole on one engine vs split across two coupled copies
 *    on two threads.  items/s = simulated events per second (summed
 *    over owners for the pair), so pair/seq is the 2-process speedup
 *    bench_guard --mode transport floors on multi-core runners.
 *
 * Results append to BENCH_transport.json (bench/bench_json.hh).  Every
 * row carries cores/oversubscribed counters: on a 1-core host the two
 * sides timeshare one CPU and every wait is a context switch, so the
 * guard skips the timing floors there — explicitly, never silently.
 */

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/incast.hh"
#include "bench/bench_json.hh"
#include "fame/partition.hh"
#include "fame/transport.hh"
#include "sim/cluster.hh"

using namespace diablo;
using namespace diablo::time_literals;

namespace {

size_t
host_cores()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

/** Stamp a row with the worker/core shape (see microbench_fame.cc). */
void
annotate_multicore(benchmark::State &state, size_t workers)
{
    const size_t cores = host_cores();
    state.counters["workers"] =
        benchmark::Counter(static_cast<double>(workers));
    state.counters["cores"] =
        benchmark::Counter(static_cast<double>(cores));
    state.counters["oversubscribed"] =
        benchmark::Counter(workers > cores ? 1.0 : 0.0);
}

void
BM_ShmRingRoundTrip(benchmark::State &state)
{
    fame::ShmGroupLayout layout;
    layout.nprocs = 2;
    layout.ring_capacity = 1u << 16;
    const std::string path = "/tmp/diablo_bench_ring_" +
                             std::to_string(getpid()) + ".shm";
    std::remove(path.c_str());
    ShmSegment seg = ShmSegment::create(path, layout.totalBytes());
    fame::initGroupSegment(seg.data(), layout);
    auto ping = fame::groupTransport(seg.data(), layout, 0, 1);
    auto pong = fame::groupTransport(seg.data(), layout, 1, 0);
    seg.unlinkFile();

    constexpr uint64_t kStop = UINT64_MAX;
    std::thread echo([tr = pong.get()] {
        uint64_t rec = 0;
        while (true) {
            if (tr->tryRecv(&rec, sizeof(rec)) == sizeof(rec)) {
                if (rec == kStop) {
                    return;
                }
                while (!tr->trySend(&rec, sizeof(rec))) {
                }
                continue;
            }
            tr->waitForData(/*spin=*/2048, /*timeout_ns=*/1000 * 1000);
        }
    });

    uint64_t seqno = 0;
    for (auto _ : state) {
        const uint64_t sent = seqno++;
        while (!ping->trySend(&sent, sizeof(sent))) {
        }
        uint64_t got = 0;
        while (ping->tryRecv(&got, sizeof(got)) != sizeof(got)) {
            ping->waitForData(/*spin=*/2048, /*timeout_ns=*/1000 * 1000);
        }
        if (got != sent) {
            state.SkipWithError("echo mismatch");
            break;
        }
    }
    while (!ping->trySend(&kStop, sizeof(kStop))) {
    }
    echo.join();
    annotate_multicore(state, 2);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_CoupledSyncRate(benchmark::State &state)
{
    // 1 ms quantum over a 1 s horizon with empty partitions and
    // skipping off: 1000 barriers of pure SYNC exchange per run.
    uint64_t syncs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto pair = fame::makeInProcTransportPair();
        fame::PartitionSet set_a(2);
        fame::PartitionSet set_b(2);
        for (fame::PartitionSet *ps : {&set_a, &set_b}) {
            ps->setQuantum(SimTime::ms(1));
            ps->setSkipIdleQuanta(false);
            ps->partition(0).schedule(1_sec, [] {});
            ps->partition(1).schedule(1_sec, [] {});
        }
        fame::PartitionSet::CoupledOptions oa;
        oa.self_rank = 0;
        oa.owner_of = {0, 1};
        oa.peers = {{1u, pair.first.get()}};
        set_a.enableCoupled(oa);
        fame::PartitionSet::CoupledOptions ob;
        ob.self_rank = 1;
        ob.owner_of = {0, 1};
        ob.peers = {{0u, pair.second.get()}};
        set_b.enableCoupled(ob);
        state.ResumeTiming();

        bool ok_b = false;
        std::thread peer([&] { ok_b = set_b.runCoupled(1_sec); });
        const bool ok_a = set_a.runCoupled(1_sec);
        peer.join();
        if (!ok_a || !ok_b) {
            state.SkipWithError("coupled run abandoned");
            break;
        }
        syncs += set_a.coupledStats().sync_sent +
                 set_a.coupledStats().sync_recv;
    }
    annotate_multicore(state, 2);
    state.SetItemsProcessed(static_cast<int64_t>(syncs));
}

sim::ClusterParams
fourRackParams()
{
    sim::ClusterParams p = sim::ClusterParams::gige1us();
    p.topo.servers_per_rack = 3;
    p.topo.racks_per_array = 4;
    p.topo.num_arrays = 1;
    return p;
}

/** One process's copy of the benchmark incast model. */
struct ModelCopy {
    ModelCopy()
        : params(fourRackParams()),
          ps(sim::Cluster::partitionsRequired(params)),
          cluster(ps, params)
    {
        apps::IncastParams ip;
        ip.block_bytes = 32 * 1024;
        ip.iterations = 3;
        ip.warmup_iterations = 1;
        std::vector<net::NodeId> servers;
        for (net::NodeId n = 3; n < cluster.size(); ++n) {
            servers.push_back(n);
        }
        app = std::make_unique<apps::IncastApp>(cluster, ip,
                                                /*client=*/0, servers);
        app->install();
    }

    sim::ClusterParams params;
    fame::PartitionSet ps;
    sim::Cluster cluster;
    std::unique_ptr<apps::IncastApp> app;
};

void
BM_CoupledIncastSeq(benchmark::State &state)
{
    uint64_t events = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto m = std::make_unique<ModelCopy>();
        state.ResumeTiming();
        m->ps.runSequential(10_sec);
        events += m->ps.lastRunTotalExecutedEvents();
    }
    annotate_multicore(state, 1);
    state.SetItemsProcessed(static_cast<int64_t>(events));
}

void
BM_CoupledIncastPair(benchmark::State &state)
{
    uint64_t events = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto a = std::make_unique<ModelCopy>();
        auto b = std::make_unique<ModelCopy>();
        const std::vector<uint32_t> owner =
            fame::PartitionSet::lptAssign(a->ps.partitionWeights(), 2);
        auto pair = fame::makeInProcTransportPair();
        fame::PartitionSet::CoupledOptions oa;
        oa.self_rank = 0;
        oa.owner_of = owner;
        oa.peers = {{1u, pair.first.get()}};
        a->cluster.enableProcessCoupling(oa);
        fame::PartitionSet::CoupledOptions ob;
        ob.self_rank = 1;
        ob.owner_of = owner;
        ob.peers = {{0u, pair.second.get()}};
        b->cluster.enableProcessCoupling(ob);
        state.ResumeTiming();

        bool ok_b = false;
        std::thread peer([&] { ok_b = b->ps.runCoupled(10_sec); });
        const bool ok_a = a->ps.runCoupled(10_sec);
        peer.join();
        if (!ok_a || !ok_b) {
            state.SkipWithError("coupled run abandoned");
            break;
        }
        // Each side executed only its owned partitions; the sum is the
        // whole model, comparable to the sequential row.
        events += a->ps.lastRunTotalExecutedEvents() +
                  b->ps.lastRunTotalExecutedEvents();
    }
    annotate_multicore(state, 2);
    state.SetItemsProcessed(static_cast<int64_t>(events));
}

BENCHMARK(BM_ShmRingRoundTrip)->UseRealTime();

BENCHMARK(BM_CoupledSyncRate)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_CoupledIncastSeq)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_CoupledIncastPair)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

// Console output plus a trajectory entry in BENCH_transport.json, like
// the engine/cluster/packet benchmark files.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::ConsoleReporter console;
    diablo::bench_json::TrajectoryReporter trajectory;
    diablo::bench_json::TeeReporter tee(console, trajectory);
    benchmark::RunSpecifiedBenchmarks(&tee);
    const std::string path =
        diablo::bench_json::TrajectoryReporter::defaultPath(
            "BENCH_transport.json");
    if (!trajectory.append(path)) {
        fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
    benchmark::Shutdown();
    return 0;
}
