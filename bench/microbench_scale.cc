/**
 * @file
 * Paper-scale memory-diet benchmark: can one host hold the paper's
 * 32,768-node datacenter (32 arrays x 32 racks x 32 servers, §6.3) and
 * run a deterministic memcached experiment over it?
 *
 *  - BM_SampleSetFoldPercentile / BM_SketchFoldPercentile: the stats
 *    side of the diet.  Identical sample counts (the 100k of the
 *    recorded BM_SampleSetPercentile engine baseline), identical
 *    queries; the sketch answers from fixed-memory bins instead of
 *    sorting retained samples.  tools/bench_guard.py --mode scale
 *    asserts the >= 10x separation.
 *
 *  - BM_Memcached32kUdp: the node-state side.  A lazily materialized
 *    32k-node sharded cluster runs the same seeded UDP memcached
 *    workload on the sequential reference engine and the pooled
 *    parallel engine; the benchmark reports peak RSS, nodes per GB,
 *    engine event throughput, and a seq_par_identical flag computed
 *    from chained statistic fingerprints (counters + quantile-sketch
 *    digests folded in partition/client order).  Results are appended
 *    to BENCH_scale.json (see bench/bench_json.hh).
 *
 * DIABLO_SCALE_REQUESTS overrides the per-client request count (CI uses
 * a reduced value to keep the smoke run short; the recorded trajectory
 * entries use the default).
 */

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "apps/mc_experiment.hh"
#include "bench/bench_json.hh"
#include "core/stats.hh"
#include "sim/cluster.hh"

using namespace diablo;
using namespace diablo::time_literals;

namespace {

/** Peak RSS of this process, in bytes (ru_maxrss is KiB on Linux). */
uint64_t
peakRssBytes()
{
    struct rusage ru;
    std::memset(&ru, 0, sizeof(ru));
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

// ---------------------------------------------------------------------
// Stats fold: raw SampleSet vs fixed-memory QuantileSketch.
// ---------------------------------------------------------------------

constexpr size_t kFoldClients = 100;
constexpr size_t kSamplesPerClient = 1000; // 100k total = engine baseline

/** Deterministic latency-shaped value stream (no libm, no RNG state). */
double
sampleValue(uint64_t i)
{
    // Mix to spread across ~3 decades like a latency tail.
    uint64_t z = i * 0x9E3779B97F4A7C15ULL;
    z ^= z >> 29;
    return 100.0 + static_cast<double>(z % 100000) / 37.0;
}

/**
 * The availability/latency fold the harness performs at paper scale:
 * per-client accumulators merged client-by-client, then one tail
 * query.  Raw mode re-sorts the retained samples; sketch mode adds
 * fixed-size bin arrays.  Same multiset, same query.
 */
void
BM_SampleSetFoldPercentile(benchmark::State &state)
{
    std::vector<SampleSet> clients(kFoldClients);
    for (size_t c = 0; c < kFoldClients; ++c) {
        for (size_t i = 0; i < kSamplesPerClient; ++i) {
            clients[c].record(sampleValue(c * kSamplesPerClient + i));
        }
    }
    double p99 = 0;
    for (auto _ : state) {
        SampleSet fold;
        for (const SampleSet &c : clients) {
            fold.merge(c);
        }
        p99 = fold.percentile(99);
        benchmark::DoNotOptimize(p99);
    }
    state.counters["total_samples"] = benchmark::Counter(
        static_cast<double>(kFoldClients * kSamplesPerClient));
}
BENCHMARK(BM_SampleSetFoldPercentile)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Guards the SampleSet::merge inplace_merge fast path: when both
 * sides' sorted caches are valid the merged cache must *stay* valid,
 * so folding K already-queried client sets never pays a re-sort at
 * the final percentile query.  The SkipWithError turns a silently
 * dropped fast path into a CI failure instead of a quiet slowdown.
 */
void
BM_SampleSetSortedMergeFold(benchmark::State &state)
{
    std::vector<SampleSet> clients(kFoldClients);
    for (size_t c = 0; c < kFoldClients; ++c) {
        for (size_t i = 0; i < kSamplesPerClient; ++i) {
            clients[c].record(sampleValue(c * kSamplesPerClient + i));
        }
        clients[c].percentile(50); // validate each client's cache
    }
    double p99 = 0;
    for (auto _ : state) {
        SampleSet fold = clients[0]; // copy keeps the cache valid
        for (size_t c = 1; c < kFoldClients; ++c) {
            fold.merge(clients[c]);
        }
        if (!fold.sortedCacheValid()) {
            state.SkipWithError("merge fast path lost the sorted cache");
            return;
        }
        p99 = fold.percentile(99);
        benchmark::DoNotOptimize(p99);
    }
    state.counters["total_samples"] = benchmark::Counter(
        static_cast<double>(kFoldClients * kSamplesPerClient));
}
BENCHMARK(BM_SampleSetSortedMergeFold)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_SketchFoldPercentile(benchmark::State &state)
{
    std::vector<QuantileSketch> clients(kFoldClients);
    for (size_t c = 0; c < kFoldClients; ++c) {
        for (size_t i = 0; i < kSamplesPerClient; ++i) {
            clients[c].record(sampleValue(c * kSamplesPerClient + i));
        }
    }
    double p99 = 0;
    for (auto _ : state) {
        QuantileSketch fold;
        for (const QuantileSketch &c : clients) {
            fold.merge(c);
        }
        p99 = fold.percentile(99);
        benchmark::DoNotOptimize(p99);
    }
    state.counters["total_samples"] = benchmark::Counter(
        static_cast<double>(kFoldClients * kSamplesPerClient));
    state.counters["sketch_bytes"] = benchmark::Counter(
        static_cast<double>(clients[0].memoryBytes()));
}
BENCHMARK(BM_SketchFoldPercentile)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// The 32k-node run.
// ---------------------------------------------------------------------

uint32_t
scaleRequests()
{
    const char *env = std::getenv("DIABLO_SCALE_REQUESTS");
    if (env && *env) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) {
            return static_cast<uint32_t>(v);
        }
    }
    return 30;
}

apps::McExperimentParams
paperScaleParams()
{
    apps::McExperimentParams mp;
    mp.cluster = sim::ClusterParams::gige1us();
    // The paper's full datacenter shape (§6.3): 32 arrays x 32 racks x
    // 32 servers = 32,768 nodes, 1,024 rack partitions + 1 switch
    // partition.
    mp.cluster.topo.servers_per_rack = 32;
    mp.cluster.topo.racks_per_array = 32;
    mp.cluster.topo.num_arrays = 32;
    mp.cluster.lazy_servers = true;
    // A representative active subset: 64 servers + 64 clients spread
    // round-robin over the racks.  Every other node stays idle — and,
    // on the lazy cluster, unmaterialized; that is the memory diet
    // being measured.  UDP keeps the active flows connectionless (TCP
    // preconnect would build clients x servers connection state, which
    // is a workload choice, not node-state overhead).
    mp.num_servers = 64;
    mp.num_clients = 64;
    mp.sketch_stats = true;
    mp.server.udp = true;
    mp.client.udp = true;
    mp.client.requests = scaleRequests();
    return mp;
}

struct ScaleOutcome {
    uint64_t fingerprint = 0; ///< chained digest of every statistic
    uint64_t events = 0;
    uint64_t materialized = 0;
    uint64_t arena_bytes = 0;
    double elapsed_sim_s = 0;
};

ScaleOutcome
runPaperScale(bool parallel)
{
    const apps::McExperimentParams mp = paperScaleParams();
    fame::PartitionSet ps(sim::Cluster::partitionsRequired(mp.cluster));
    apps::McExperiment exp(ps, mp);
    exp.run(parallel);

    const apps::McExperimentResult &r = exp.result();
    sim::Cluster &cluster = exp.cluster();

    // Chain every observable statistic in a fixed order with the
    // order-sensitive fold, so "seq == par" means the full latency
    // distributions, protocol counters, and per-partition event counts
    // are bit-identical — not merely the totals.
    uint64_t fp = 0;
    auto chain = [&fp](uint64_t v) {
        fp = QuantileSketch::chainFingerprint(fp, v);
    };
    chain(r.requests_completed);
    chain(r.udp_timeouts);
    chain(r.udp_retries);
    chain(static_cast<uint64_t>(r.elapsed.toPs()));
    chain(r.latency_us.fingerprint());
    chain(r.first_request_us.fingerprint());
    for (int h = 0; h < 3; ++h) {
        chain(r.latency_us_by_hop[h].fingerprint());
    }
    chain(cluster.totalTcpRetransmits());
    chain(cluster.totalUdpSocketDrops());
    chain(cluster.totalNicRxDrops());
    chain(cluster.network().totalSwitchDrops());
    chain(cluster.network().totalForwarded());
    for (size_t i = 0; i < ps.size(); ++i) {
        chain(ps.partition(i).executedEvents());
    }

    ScaleOutcome out;
    out.fingerprint = fp;
    out.events = ps.totalExecutedEvents();
    out.materialized = cluster.materializedServers();
    for (const sim::Cluster::ArenaStats &a : cluster.arenaStats()) {
        out.arena_bytes += a.bytes_used;
    }
    out.elapsed_sim_s = r.elapsed.toPs() / 1e12;
    return out;
}

void
BM_Memcached32kUdp(benchmark::State &state)
{
    ScaleOutcome seq, par;
    uint64_t events = 0;
    for (auto _ : state) {
        seq = runPaperScale(/*parallel=*/false);
        par = runPaperScale(/*parallel=*/true);
        events += seq.events + par.events;
    }
    if (seq.fingerprint != par.fingerprint) {
        state.SkipWithError("sequential and parallel runs diverged");
        return;
    }
    const uint64_t rss = peakRssBytes();
    const double nodes = 32.0 * 32.0 * 32.0; // 32,768
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.counters["peak_rss_mb"] =
        benchmark::Counter(static_cast<double>(rss) / (1024.0 * 1024.0));
    state.counters["nodes_per_gb"] = benchmark::Counter(
        nodes / (static_cast<double>(rss) / (1024.0 * 1024.0 * 1024.0)));
    state.counters["bytes_per_node"] =
        benchmark::Counter(static_cast<double>(rss) / nodes);
    state.counters["materialized_nodes"] =
        benchmark::Counter(static_cast<double>(seq.materialized));
    state.counters["arena_bytes"] =
        benchmark::Counter(static_cast<double>(seq.arena_bytes));
    state.counters["seq_par_identical"] = benchmark::Counter(1.0);
    state.counters["sim_elapsed_s"] =
        benchmark::Counter(seq.elapsed_sim_s);
    state.counters["requests_per_client"] =
        benchmark::Counter(static_cast<double>(scaleRequests()));
}
BENCHMARK(BM_Memcached32kUdp)
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kSecond);

} // namespace

// Custom main: console output plus a JSON trajectory entry appended to
// BENCH_scale.json, so the paper-scale memory/throughput floors are
// tracked across PRs (tools/bench_guard.py --mode scale).
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::ConsoleReporter console;
    diablo::bench_json::TrajectoryReporter trajectory;
    diablo::bench_json::TeeReporter tee(console, trajectory);
    benchmark::RunSpecifiedBenchmarks(&tee);
    const std::string path =
        diablo::bench_json::TrajectoryReporter::defaultPath(
            "BENCH_scale.json");
    if (!trajectory.append(path)) {
        fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
    benchmark::Shutdown();
    return 0;
}
