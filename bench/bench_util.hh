#ifndef DIABLO_BENCH_BENCH_UTIL_HH_
#define DIABLO_BENCH_BENCH_UTIL_HH_

/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * Scale control: every memcached-style bench honours the DIABLO_SCALE
 * environment variable:
 *   quick (default) - reduced requests per client; minutes for the suite
 *   full            - more requests; tighter tails
 *   paper           - the paper's 30,000 requests per client
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/incast.hh"
#include "apps/mc_experiment.hh"
#include "analysis/report.hh"

namespace diablo {
namespace bench {

/** Requests per client for the current DIABLO_SCALE. */
inline uint32_t
requestsPerClient()
{
    const char *s = std::getenv("DIABLO_SCALE");
    std::string scale = s ? s : "quick";
    if (scale == "paper") {
        return 30000;
    }
    if (scale == "full") {
        return 1500;
    }
    return 200;
}

/** Incast iterations for the current DIABLO_SCALE. */
inline uint32_t
incastIterations()
{
    const char *s = std::getenv("DIABLO_SCALE");
    std::string scale = s ? s : "quick";
    if (scale == "paper" || scale == "full") {
        return 40;
    }
    return 15;
}

/** The paper's array topologies at the three evaluated scales. */
inline void
setScaleTopology(sim::ClusterParams &p, uint32_t nodes)
{
    p.topo.servers_per_rack = 31;
    if (nodes <= 496) {
        p.topo.racks_per_array = 16;
        p.topo.num_arrays = 1;
    } else if (nodes <= 992) {
        p.topo.racks_per_array = 16;
        p.topo.num_arrays = 2;
    } else {
        p.topo.racks_per_array = 16;
        p.topo.num_arrays = 4;
    }
}

/** Standard memcached experiment config at a paper scale point. */
inline apps::McExperimentParams
mcConfig(uint32_t nodes, bool udp, bool tengig)
{
    apps::McExperimentParams p;
    p.cluster = tengig ? sim::ClusterParams::tengig100ns()
                       : sim::ClusterParams::gige1us();
    setScaleTopology(p.cluster, nodes);
    p.num_servers = 2 * p.cluster.topo.racks_per_array *
                    p.cluster.topo.num_arrays; // 2 per rack (Fig 7)
    p.server.udp = udp;
    p.client.udp = udp;
    p.client.requests = requestsPerClient();
    return p;
}

/** Run one experiment and return its aggregated result. */
inline apps::McExperimentResult
runMc(const apps::McExperimentParams &params)
{
    Simulator sim;
    apps::McExperiment exp(sim, params);
    exp.run();
    return exp.result();
}

/** One TCP Incast run: n servers + 1 client on a single ToR. */
inline apps::IncastResult
runIncast(uint32_t num_servers, switchm::BufferPolicy policy,
          uint64_t buffer_bytes, bool use_epoll, double cpu_ghz,
          bool tengig, uint32_t iterations,
          topo::SwitchModelKind model = topo::SwitchModelKind::Voq)
{
    Simulator sim;
    sim::ClusterParams cp = tengig ? sim::ClusterParams::tengig100ns()
                                   : sim::ClusterParams::gige1us();
    cp.topo.servers_per_rack = num_servers + 1;
    cp.topo.racks_per_array = 1;
    cp.topo.num_arrays = 1;
    cp.topo.switch_model = model;
    cp.cpu.freq_ghz = cpu_ghz;
    cp.topo.rack_sw.buffer_policy = policy;
    cp.topo.rack_sw.buffer_per_port_bytes = buffer_bytes;
    // Shared pools are sized for the full switch (16-port class), not
    // for the subset of occupied ports.
    cp.topo.rack_sw.buffer_total_bytes = buffer_bytes * 16;
    sim::Cluster cluster(sim, cp);

    apps::IncastParams ip;
    ip.block_bytes = 256 * 1024;
    ip.iterations = iterations;
    ip.use_epoll = use_epoll;
    std::vector<net::NodeId> servers;
    for (uint32_t i = 1; i <= num_servers; ++i) {
        servers.push_back(i);
    }
    apps::IncastApp app(cluster, ip, 0, servers);
    app.install();
    sim.run();
    return app.result();
}

inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", title);
    std::printf("Reproduces: %s\n", paper_ref);
    std::printf("Scale: DIABLO_SCALE=%s (requests/client=%u)\n",
                std::getenv("DIABLO_SCALE") ? std::getenv("DIABLO_SCALE")
                                            : "quick",
                requestsPerClient());
    std::printf("==========================================================\n");
}

} // namespace bench
} // namespace diablo

#endif // DIABLO_BENCH_BENCH_UTIL_HH_
