/**
 * @file
 * Figure 8: "Real machines vs. simulated memcached servers" — the
 * single-rack validation.  Two memcached servers plus a growing number
 * of closed-loop clients in one 16-node rack: (a) per-server throughput
 * versus client count saturates; (b) mean client latency stays flat,
 * then rises once the servers saturate.
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

namespace {

struct Point {
    double server_kops;
    double mean_latency_us;
};

Point
runRack(uint32_t clients, bool udp, uint32_t workers)
{
    apps::McExperimentParams p;
    p.cluster = sim::ClusterParams::gige1us();
    p.cluster.topo.servers_per_rack = 2 + clients;
    p.cluster.topo.racks_per_array = 1;
    p.cluster.topo.num_arrays = 1;
    p.num_servers = 2;
    p.server.udp = udp;
    p.server.worker_threads = workers;
    p.client.udp = udp;
    p.client.requests = requestsPerClient();
    // Saturation sweep: clients blast back-to-back (no think time).
    p.client.think_mean = SimTime();
    p.client.start_window = SimTime::ms(1);

    Simulator sim;
    apps::McExperiment exp(sim, p);
    exp.run();
    const auto &r = exp.result();
    Point out;
    out.server_kops = static_cast<double>(r.requests_completed) /
                      r.elapsed.asSeconds() / 1000.0 / 2.0; // per server
    out.mean_latency_us = r.latency_us.mean();
    return out;
}

} // namespace

int
main()
{
    banner("Figure 8: single-rack validation (2 memcached servers)",
           "Fig. 8(a) throughput and 8(b) latency vs number of clients");

    const std::vector<uint32_t> clients = {1, 2, 4, 6, 8, 10, 12, 14};

    for (bool udp : {true, false}) {
        for (uint32_t workers : {4u, 8u}) {
            std::printf("\n--- %s, %u worker threads ---\n",
                        udp ? "UDP" : "TCP", workers);
            Table t({"clients", "per-server throughput (k req/s)",
                     "mean client latency (us)"});
            analysis::Series thr{"throughput", {}}, lat{"latency", {}};
            for (uint32_t c : clients) {
                Point pt = runRack(c, udp, workers);
                t.addRow({Table::cell("%u", c),
                          Table::cell("%.1f", pt.server_kops),
                          Table::cell("%.1f", pt.mean_latency_us)});
                thr.points.emplace_back(c, pt.server_kops);
                lat.points.emplace_back(c, pt.mean_latency_us);
            }
            t.print();
        }
    }

    std::printf(
        "\nshape targets (paper Fig. 8): throughput scales with few "
        "clients then\nsaturates; latency is low and linear with few "
        "clients, then grows as the\nservers saturate.  Absolute numbers "
        "differ (different simulated hardware);\nthe paper's goal — and "
        "ours — is reproducing the curve shapes.\n");
    return 0;
}
