/**
 * @file
 * Figure 2: "Size of physical testbeds used in recent SIGCOMM papers."
 *
 * Prints the reconstructed survey scatter (servers vs switches per
 * paper) and the aggregate medians the paper reports: 16 servers and 6
 * switches — two orders of magnitude below a ~3,000-node WSC array.
 */

#include "analysis/report.hh"
#include "analysis/survey.hh"
#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::analysis;

int
main()
{
    bench::banner("Figure 2: SIGCOMM 2008-2013 physical testbed survey",
                  "Fig. 2 and SS2.3 (median testbed: 16 servers, "
                  "6 switches)");

    Table t({"paper", "year", "servers", "switches", "workload"});
    std::vector<double> servers, switches;
    Series scatter{"testbeds (servers vs switches)", {}};
    for (const auto &e : sigcommSurvey()) {
        const char *w =
            e.workload == SurveyWorkload::Microbenchmark ? "micro"
            : e.workload == SurveyWorkload::Trace        ? "trace"
                                                         : "application";
        t.addRow({e.name, Table::cell("%d", e.year),
                  Table::cell("%u", e.servers),
                  Table::cell("%u", e.switches), w});
        servers.push_back(e.servers);
        switches.push_back(e.switches);
        scatter.points.emplace_back(e.servers, e.switches);
    }
    t.print();

    asciiPlot("servers (log x) vs switches (y)", {scatter}, 64, 14, true);

    std::printf("\nmedian servers  = %.0f   (paper: 16)\n",
                medianOf(servers));
    std::printf("median switches = %.0f   (paper: 6)\n",
                medianOf(switches));
    std::printf("for comparison: one WSC array ~= 3,000 servers, "
                "~100 switches;\nDIABLO prototype simulates 2,976 "
                "servers + 103 switches.\n");
    return 0;
}
