/**
 * @file
 * Ablation: multi-core server timing model — the extension the paper
 * lists as planned for DIABLO-2 ("we have only simulated fixed-CPI
 * single-CPU servers ... A more complex timing model supporting
 * multi-core CPUs is planned", §5).
 *
 * Saturates two memcached servers in one rack with think-time-free
 * clients and sweeps the server core count: per-server throughput
 * scales with cores until the workers run out of parallelism, and the
 * saturated mean latency falls correspondingly.
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Ablation: multi-core servers (the DIABLO-2 extension)",
           "SS5 future work - multi-core fixed-CPI timing model");

    Table t({"server cores", "per-server throughput (k req/s)",
             "mean latency (us)", "busiest-core util"});

    for (uint32_t cores : {1u, 2u, 4u}) {
        apps::McExperimentParams p;
        p.cluster = sim::ClusterParams::gige1us();
        p.cluster.topo.servers_per_rack = 16;
        p.cluster.topo.racks_per_array = 1;
        p.cluster.topo.num_arrays = 1;
        p.cluster.cpu.cores = cores;
        p.num_servers = 2;
        p.server.udp = true;
        p.server.worker_threads = 4;
        // Heavier per-request service so the CPU is the bottleneck.
        p.server.request_base_cycles = 60000;
        p.client.udp = true;
        p.client.requests = requestsPerClient();
        p.client.think_mean = SimTime(); // closed-loop saturation
        p.client.start_window = SimTime::ms(1);

        Simulator sim;
        apps::McExperiment exp(sim, p);
        exp.run();
        const auto &r = exp.result();

        double util = 0;
        for (net::NodeId s : exp.serverNodes()) {
            util = std::max(util,
                            exp.cluster().kernel(s).cpu().utilization());
        }
        t.addRow({Table::cell("%u", cores),
                  Table::cell("%.1f",
                              static_cast<double>(r.requests_completed) /
                                  r.elapsed.asSeconds() / 1000.0 / 2.0),
                  Table::cell("%.1f", r.latency_us.mean()),
                  Table::cell("%.0f%%", 100 * util)});
    }
    t.print();

    std::printf("\nWith 4 libevent-style workers per memcached server, "
                "throughput scales\nwith cores while latency under "
                "saturation falls — the measurement DIABLO-2's\nmulti-"
                "core timing model was planned to enable.\n");
    return 0;
}
