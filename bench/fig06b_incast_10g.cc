/**
 * @file
 * Figure 6(b): TCP Incast on a simulated 10 Gbps network under different
 * server hardware and software configurations: {2 GHz, 4 GHz} CPUs x
 * {pthread-blocking, epoll} client service styles.
 *
 * Shape targets (paper SS4.1):
 *  - CPU speed caps goodput when there is no collapse (2 GHz client
 *    ~1.8 Gbps vs several Gbps at 4 GHz);
 *  - epoll significantly delays the onset of throughput collapse;
 *  - the pthread client collapses quickly even with the faster CPU.
 */

#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

int
main()
{
    banner("Figure 6(b): TCP Incast goodput, 10 Gbps simulated switch",
           "Fig. 6(b) - CPU speed x syscall interface at 10 Gbps");

    const uint32_t iters = incastIterations();
    const std::vector<uint32_t> counts = {1, 4, 8, 12, 16, 20, 23};

    struct Cfg {
        const char *name;
        double ghz;
        bool epoll;
    };
    const std::vector<Cfg> cfgs = {
        {"4GHz epoll", 4.0, true},
        {"4GHz pthread", 4.0, false},
        {"2GHz epoll", 2.0, true},
        {"2GHz pthread", 2.0, false},
    };

    Table t({"servers", "4GHz epoll", "4GHz pthread", "2GHz epoll",
             "2GHz pthread"});
    std::vector<analysis::Series> series;
    for (const auto &c : cfgs) {
        series.push_back({c.name, {}});
    }

    for (uint32_t n : counts) {
        std::vector<std::string> row = {Table::cell("%u", n)};
        for (size_t ci = 0; ci < cfgs.size(); ++ci) {
            auto r = runIncast(n, switchm::BufferPolicy::Partitioned,
                               4096, cfgs[ci].epoll, cfgs[ci].ghz, true,
                               iters);
            row.push_back(Table::cell("%.0f", r.goodputMbps()));
            series[ci].points.emplace_back(n, r.goodputMbps());
        }
        t.addRow(row);
    }
    t.print();
    analysis::asciiPlot("goodput (Mbps) vs number of servers (10 Gbps)",
                        series, 64, 16, false);

    std::printf(
        "\npaper anchors: 2 GHz client tops out ~1.8 Gbps without "
        "collapse;\nepoll delays collapse (paper: onset ~9 servers at "
        "4 GHz, 2.7 Gbps ->\n1.8 Gbps by 23); pthread collapses quickly "
        "even at 4 GHz, recovering\nto only ~10%% of link capacity.\n");
    return 0;
}
