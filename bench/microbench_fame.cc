/**
 * @file
 * Microbenchmarks of the conservative-parallel FAME engine itself,
 * isolating the three costs that decide whether partitioned execution
 * accelerates or taxes the model (the paper's §3.2 synchronization
 * design, SimBricks' quantum-sync overhead):
 *
 *  - BM_FameBarrierRoundTrip: raw cost of one synchronization quantum
 *    with *no model work at all* (skipping disabled, empty partitions).
 *    items/s = barriers/s; the spin-then-park barrier and the fused
 *    worker count (threads axis) are what's being measured.
 *  - BM_FameFusedThroughput: a dense cross-partition token workload on
 *    a fixed 8-partition set, swept over worker counts.  threads=1 is
 *    the degenerate fusion that must track runSequential; larger counts
 *    expose barrier amortization on multi-core hosts.
 *  - BM_FameSkipRate: a bursty workload (activity clusters separated by
 *    long idle gaps) with skipping on; the skip_pct counter reports the
 *    fraction of grid windows the incremental next-event fold jumped
 *    over without a barrier.
 *
 * Results append to BENCH_fame.json (bench/bench_json.hh) so engine
 * regressions show up in the trajectory next to the cluster numbers.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_json.hh"
#include "fame/partition.hh"

using namespace diablo;
using namespace diablo::time_literals;

namespace {

/** Worker count a run would fuse to (mirrors PartitionSet's rule). */
size_t
ps_workers(size_t parts, size_t threads)
{
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw != 0 ? hw : 1;
    }
    return std::min(parts, threads);
}

size_t
host_cores()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

/**
 * Stamp every entry with the host core count and whether this row ran
 * more workers than cores.  Trajectory comparisons (bench_guard, and
 * anyone eyeballing BENCH_fame.json) must not mix a threads:2 row from
 * a 1-core runner — where both workers timeshare one core and the
 * barrier parks immediately — with the same row from a real 2-core
 * host.  The counters ride into the JSON via TrajectoryReporter.
 */
void
annotate_multicore(benchmark::State &state, size_t workers)
{
    const size_t cores = host_cores();
    state.counters["workers"] =
        benchmark::Counter(static_cast<double>(workers));
    state.counters["cores"] =
        benchmark::Counter(static_cast<double>(cores));
    state.counters["oversubscribed"] =
        benchmark::Counter(workers > cores ? 1.0 : 0.0);
}

void
BM_FameBarrierRoundTrip(benchmark::State &state)
{
    const auto parts = static_cast<size_t>(state.range(0));
    const auto threads = static_cast<size_t>(state.range(1));
    uint64_t quanta = 0;
    // 1 ms quantum over a 1 s horizon = 1000 barriers per run; no
    // channels and no events, so each quantum is pure synchronization.
    for (auto _ : state) {
        state.PauseTiming();
        fame::PartitionSet ps(parts);
        ps.setParallelism(threads);
        ps.setSkipIdleQuanta(false);
        // Keep one event alive at the horizon so the run cannot end
        // early; it fires once, after every measured barrier.
        ps.partition(0).schedule(1_sec, [] {});
        state.ResumeTiming();
        ps.runParallel(SimTime::sec(1));
        quanta += ps.lastRunQuanta();
    }
    annotate_multicore(state, ps_workers(parts, threads));
    state.SetItemsProcessed(static_cast<int64_t>(quanta));
}

/**
 * Dense ring: every partition forwards a token to its neighbour each
 * hop with 1 us lookahead, so every quantum carries work in every
 * partition — the worst case for barrier frequency, the best case for
 * fusion amortization.
 */
struct DenseRing {
    explicit DenseRing(fame::PartitionSet &ps, int tokens_per_part,
                       uint32_t ttl_hops = UINT32_MAX)
        : ps(ps), ttl(ttl_hops)
    {
        const size_t n = ps.size();
        channels.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            channels.push_back(&ps.makeChannel(i, (i + 1) % n, 1_us));
        }
        for (size_t i = 0; i < n; ++i) {
            for (int t = 0; t < tokens_per_part; ++t) {
                const auto token = static_cast<uint64_t>(t);
                ps.partition(i).schedule(SimTime(), [this, i, token] {
                    hop(i, token, ttl);
                });
            }
        }
    }

    void
    hop(size_t part, uint64_t token, uint32_t hops_left)
    {
        Simulator &sim = ps.partition(part);
        sum += token + static_cast<uint64_t>(sim.now().toPs() & 0xff);
        if (hops_left == 0) {
            return; // token retires; the ring can drain to idle
        }
        const size_t dst = (part + 1) % ps.size();
        channels[part]->post(
            sim.now() + 1_us + SimTime::ns(token % 31),
            [this, dst, token, hops_left] {
                hop(dst, token + 1, hops_left - 1);
            });
    }

    fame::PartitionSet &ps;
    std::vector<fame::PartitionSet::Channel *> channels;
    const uint32_t ttl;
    uint64_t sum = 0;
};

void
BM_FameFusedThroughput(benchmark::State &state)
{
    const auto threads = static_cast<size_t>(state.range(0));
    constexpr size_t kParts = 8;
    uint64_t events = 0;
    for (auto _ : state) {
        state.PauseTiming();
        fame::PartitionSet ps(kParts);
        ps.setParallelism(threads);
        DenseRing ring(ps, /*tokens_per_part=*/4);
        state.ResumeTiming();
        ps.runParallel(SimTime::ms(20));
        benchmark::DoNotOptimize(ring.sum);
        events += ps.lastRunTotalExecutedEvents();
    }
    annotate_multicore(state, ps_workers(kParts, threads));
    state.SetItemsProcessed(static_cast<int64_t>(events));
}

void
BM_FameSkipRate(benchmark::State &state)
{
    const auto threads = static_cast<size_t>(state.range(0));
    constexpr size_t kParts = 4;
    uint64_t events = 0;
    uint64_t quanta = 0;
    uint64_t grid_windows = 0;
    for (auto _ : state) {
        state.PauseTiming();
        fame::PartitionSet ps(kParts);
        ps.setParallelism(threads);
        // Channels only (no standing tokens); bursts injected below
        // with a 200-hop TTL so each one burns ~200 us of dense
        // activity and then retires, leaving ~33 ms of idle grid —
        // the bursty shape quantum skipping exists for.
        DenseRing ring(ps, 0, /*ttl=*/200);
        for (int burst = 0; burst < 3; ++burst) {
            for (size_t i = 0; i < kParts; ++i) {
                ps.partition(i).schedule(
                    SimTime::ms(1 + 33 * burst),
                    [&ring, i] { ring.hop(i, 7 + i, ring.ttl); });
            }
        }
        state.ResumeTiming();
        const SimTime horizon = SimTime::ms(100);
        ps.runParallel(horizon);
        benchmark::DoNotOptimize(ring.sum);
        events += ps.lastRunTotalExecutedEvents();
        quanta += ps.lastRunQuanta();
        grid_windows +=
            static_cast<uint64_t>(horizon.toPs() / ps.quantum().toPs());
    }
    state.counters["skip_pct"] = benchmark::Counter(
        grid_windows != 0
            ? 100.0 * static_cast<double>(grid_windows - quanta) /
                  static_cast<double>(grid_windows)
            : 0.0);
    annotate_multicore(state, ps_workers(kParts, threads));
    state.SetItemsProcessed(static_cast<int64_t>(events));
}

BENCHMARK(BM_FameBarrierRoundTrip)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({8, 0})
    ->ArgNames({"parts", "threads"})
    ->UseRealTime()
    ->MeasureProcessCPUTime();

BENCHMARK(BM_FameFusedThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->ArgName("threads")
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FameSkipRate)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("threads")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

// Custom main: console output plus a JSON trajectory entry appended to
// BENCH_fame.json, tracked across PRs like the engine/cluster files.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::ConsoleReporter console;
    diablo::bench_json::TrajectoryReporter trajectory;
    diablo::bench_json::TeeReporter tee(console, trajectory);
    benchmark::RunSpecifiedBenchmarks(&tee);
    const std::string path =
        diablo::bench_json::TrajectoryReporter::defaultPath(
            "BENCH_fame.json");
    if (!trajectory.append(path)) {
        fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
    benchmark::Shutdown();
    return 0;
}
