/**
 * @file
 * Packet-datapath microbenchmark: the allocation-free traversal claim,
 * measured.
 *
 * DIABLO's FPGA datapath moves packets through fixed BRAM rings with no
 * dynamic memory at all (§4.2-4.3); the software analog is the
 * partition-local PacketPool plus inline source routes plus ring-buffer
 * queues.  This harness drives pooled packets around the full model
 * loop — NIC tx ring -> link -> VOQ switch -> link -> NIC rx ring ->
 * recycle — and hooks global operator new/delete so every benchmark
 * reports `allocs_per_packet` alongside packets/s.  Steady state must
 * be exactly 0 allocations per packet; tools/bench_guard.py fails the
 * build if it is not.
 *
 * Results append to BENCH_packet.json (see bench/bench_json.hh).
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench/bench_json.hh"
#include "core/simulator.hh"
#include "net/link.hh"
#include "net/packet.hh"
#include "nic/nic_model.hh"
#include "switchm/voq_switch.hh"

using namespace diablo;
using namespace diablo::time_literals;

// ---------------------------------------------------------------------
// Global allocation hook.  Counts every operator new in the process —
// including google-benchmark's own — which is exactly the point: if the
// measured region stays at zero, nothing anywhere allocated.
// ---------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

// GCC pairs the replaced deletes with its builtin operator new and
// warns about malloc/free mismatch; the replacement news above really
// do malloc, so the pairing is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace {

// ---------------------------------------------------------------------
// Pool cycle: the tightest loop — make, touch, recycle.
// ---------------------------------------------------------------------

void
BM_PacketPoolCycle(benchmark::State &state)
{
    Simulator sim;
    // Warm the pool (first make heap-allocates the slab).
    { auto warm = net::makePacket(sim); }

    const uint64_t before = g_allocs.load(std::memory_order_relaxed);
    uint64_t pkts = 0;
    for (auto _ : state) {
        auto p = net::makePacket(sim);
        p->flow.proto = net::Proto::Udp;
        p->payload_bytes = 1460;
        p->route = net::SourceRoute({1, 2, 3, 4, 5});
        benchmark::DoNotOptimize(p->l3Bytes());
        ++pkts;
    }
    const uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - before;

    state.SetItemsProcessed(static_cast<int64_t>(pkts));
    state.counters["items_per_second"] = benchmark::Counter(
        static_cast<double>(pkts), benchmark::Counter::kIsRate);
    state.counters["allocs_per_packet"] =
        pkts ? static_cast<double>(allocs) / static_cast<double>(pkts)
             : 0.0;
}
BENCHMARK(BM_PacketPoolCycle);

// ---------------------------------------------------------------------
// Full datapath: NIC -> link -> VOQ switch -> link -> NIC -> recycle.
// ---------------------------------------------------------------------

/** One server NIC feeding port 0 of a 2-port switch; port 1 returns to
 *  a receiving NIC.  No kernel attached: the harness is the driver. */
struct Datapath {
    Simulator sim;
    nic::NicModel tx_nic;
    nic::NicModel rx_nic;
    switchm::VoqSwitch sw;
    net::Link up;    ///< tx NIC -> switch port 0
    net::Link down;  ///< switch port 1 -> rx NIC

    static switchm::SwitchParams
    swParams()
    {
        switchm::SwitchParams p;
        p.name = "bench-sw";
        p.num_ports = 2;
        p.port_bw = Bandwidth::gbps(10);
        p.port_latency = 100_ns;
        // Deep buffers: this benchmark measures traversal cost, not
        // congestion behavior, so nothing should drop.
        p.buffer_per_port_bytes = 1 << 20;
        return p;
    }

    Datapath()
        : tx_nic(sim, "tx", nic::NicParams{}),
          rx_nic(sim, "rx", nic::NicParams{}), sw(sim, swParams()),
          up(sim, "up", Bandwidth::gbps(10), 1_us),
          down(sim, "down", Bandwidth::gbps(10), 1_us)
    {
        up.connectTo(sw.inPort(0));
        tx_nic.attachTxLink(up);
        down.connectTo(rx_nic);
        sw.attachOutLink(1, down);
    }

    uint64_t generated = 0;
    uint64_t drained = 0;

    /** Top up the tx ring and drain/recycle the rx ring. */
    void
    pump()
    {
        while (auto p = rx_nic.rxDequeue()) {
            ++drained;
            // p dies here -> recycles to the pool that made it.
        }
        while (!tx_nic.txRingFull()) {
            auto p = net::makePacket(sim);
            p->flow.proto = net::Proto::Udp;
            p->payload_bytes = 1460;
            p->route = net::SourceRoute({1});
            ++generated;
            tx_nic.txEnqueue(std::move(p));
        }
        sim.schedule(20_us, [this] { pump(); });
    }

    /** Run until @p target packets have completed the loop. */
    void
    runUntilDrained(uint64_t target)
    {
        SimTime t = sim.now();
        while (drained < target) {
            t = t + 1_ms;
            sim.runUntil(t);
        }
    }
};

void
BM_PacketDatapath(benchmark::State &state)
{
    Datapath d;
    d.pump();
    d.runUntilDrained(4096); // warm every ring, pool and event slab

    const uint64_t before_allocs =
        g_allocs.load(std::memory_order_relaxed);
    const uint64_t before_drained = d.drained;
    for (auto _ : state) {
        d.runUntilDrained(d.drained + 1024);
    }
    const uint64_t pkts = d.drained - before_drained;
    const uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - before_allocs;

    if (const net::PacketPool *pool = net::packetPoolIfAttached(d.sim)) {
        state.counters["pool_heap_allocs"] =
            static_cast<double>(pool->heapAllocs());
        state.counters["pool_high_water"] =
            static_cast<double>(pool->highWater());
    }
    state.SetItemsProcessed(static_cast<int64_t>(pkts));
    state.counters["items_per_second"] = benchmark::Counter(
        static_cast<double>(pkts), benchmark::Counter::kIsRate);
    state.counters["allocs_per_packet"] =
        pkts ? static_cast<double>(allocs) / static_cast<double>(pkts)
             : 0.0;
}
BENCHMARK(BM_PacketDatapath);

} // namespace

// Custom main: console output plus a JSON trajectory entry appended to
// BENCH_packet.json so the allocation guarantee is machine-checkable.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::ConsoleReporter console;
    diablo::bench_json::TrajectoryReporter trajectory;
    diablo::bench_json::TeeReporter tee(console, trajectory);
    benchmark::RunSpecifiedBenchmarks(&tee);
    const std::string path =
        diablo::bench_json::TrajectoryReporter::defaultPath(
            "BENCH_packet.json");
    if (!trajectory.append(path)) {
        fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
    benchmark::Shutdown();
    return 0;
}
