/**
 * @file
 * Simulator performance (paper SS5): the FAME host-performance model's
 * slowdown predictions (250-1000x band; ~50 minutes of wall clock per
 * simulated second for 4 GHz/10 Gbps targets; "perfect" scaling from
 * 500 to 2,000 nodes), the dSPARC host-multithreading utilization that
 * underlies them, and this software engine's own event rate.
 */

#include <chrono>

#include "bench/bench_util.hh"
#include "fame/partition.hh"
#include "fame/perf_model.hh"
#include "isa/assembler.hh"
#include "isa/pipeline.hh"

using namespace diablo;
using namespace diablo::bench;
using analysis::Table;

namespace {

/** Host-pipeline utilization for T threads of a memory-heavy program. */
double
pipelineUtilization(uint32_t threads)
{
    const char *prog = R"(
        addi r2, r0, 0
        addi r3, r0, 200
    loop:
        st   r2, 0(r5)
        ld   r4, 0(r5)
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
    )";
    isa::TimingModel tm;
    isa::PipelineParams pp;
    pp.host_mem_stall_cycles = 16;
    isa::HostPipeline pipe(threads, 64, tm, pp);
    for (uint32_t t = 0; t < threads; ++t) {
        pipe.load(t, isa::assemble(prog));
    }
    pipe.runToCompletion();
    return pipe.utilization();
}

} // namespace

int
main()
{
    banner("Simulator performance: slowdown model + engine throughput",
           "SS5 - 50 min/target-second at 4 GHz; 250-1000x band; "
           "scaling");

    // --- FAME slowdown predictions ---
    fame::PerfModel pm(fame::HostPlatform::bee3());
    Table t({"target clock", "predicted slowdown",
             "wall clock per target second"});
    for (double ghz : {0.5, 1.0, 2.0, 4.0}) {
        double slow = pm.slowdown(ghz);
        t.addRow({Table::cell("%.1f GHz", ghz),
                  Table::cell("%.0fx", slow),
                  Table::cell("%.1f min", slow / 60.0)});
    }
    t.print();
    std::printf("paper anchors: ~50 min per target second at 4 GHz "
                "(%.1f min predicted);\n250-1000x band for lower-clock "
                "targets; software simulation ~two weeks\nfor 10 target "
                "seconds (model: %.1f days).\n\n",
                pm.slowdown(4.0) / 60.0,
                fame::PerfModel::softwareSlowdown(4.0, 3.0, 30) * 3000 *
                    10 / 86400.0);

    // --- host multithreading utilization (the mechanism) ---
    Table u({"threads/pipeline", "host pipeline utilization"});
    for (uint32_t threads : {1u, 4u, 16u, 32u}) {
        u.addRow({Table::cell("%u", threads),
                  Table::cell("%.0f%%",
                              100 * pipelineUtilization(threads))});
    }
    u.print();
    std::printf("host multithreading hides host-DRAM stalls (paper "
                "SS3.1); 32 threads\nsaturate the pipeline.\n\n");

    // --- scaling: simulation cost per node stays flat with scale ---
    Table s({"nodes", "sim events", "events/node",
             "host wall clock (s)"});
    double ev_per_node_500 = 0, ev_per_node_2k = 0;
    for (uint32_t nodes : {496u, 992u, 1984u}) {
        apps::McExperimentParams p = mcConfig(nodes, true, false);
        p.client.requests = std::min(requestsPerClient(), 100u);
        Simulator sim;
        apps::McExperiment exp(sim, p);
        auto t0 = std::chrono::steady_clock::now();
        exp.run();
        auto t1 = std::chrono::steady_clock::now();
        const double wall =
            std::chrono::duration<double>(t1 - t0).count();
        const double per_node =
            static_cast<double>(sim.executedEvents()) / nodes;
        if (nodes == 496) {
            ev_per_node_500 = per_node;
        }
        if (nodes == 1984) {
            ev_per_node_2k = per_node;
        }
        s.addRow({Table::cell("%u", nodes),
                  Table::cell("%llu", static_cast<unsigned long long>(
                                          sim.executedEvents())),
                  Table::cell("%.0f", per_node),
                  Table::cell("%.1f", wall)});
    }
    s.print();
    std::printf("events per node at 2000 vs 500 nodes: %.2fx (paper: "
                "\"no performance\ndrop from simulating 500 nodes ... to "
                "2,000\" — per-node simulation cost\nstays flat)\n\n",
                ev_per_node_2k / ev_per_node_500);

    // --- the distributed engine's parallel speedup (FAME-style) ---
    {
        using namespace diablo::time_literals;
        auto buildLoad = [](fame::PartitionSet &ps) {
            for (size_t i = 0; i < ps.size(); ++i) {
                auto &ch = ps.makeChannel(i, (i + 1) % ps.size(), 5_us);
                // Heavy local work per partition plus cross traffic.
                for (int k = 0; k < 200; ++k) {
                    ps.partition(i).schedule(
                        SimTime::us(k), [&ps, i, &ch] {
                        volatile double x = 0;
                        for (int j = 0; j < 20000; ++j) {
                            x += j;
                        }
                        ch.post(ps.partition(i).now() + 5_us, [] {});
                    });
                }
            }
        };
        double wall_seq, wall_par;
        {
            fame::PartitionSet ps(4);
            buildLoad(ps);
            auto t0 = std::chrono::steady_clock::now();
            ps.runSequential(1_ms);
            wall_seq = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        }
        {
            fame::PartitionSet ps(4);
            buildLoad(ps);
            auto t0 = std::chrono::steady_clock::now();
            ps.runParallel(1_ms);
            wall_par = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        }
        std::printf("partitioned engine, 4 partitions: sequential %.3fs, "
                    "parallel %.3fs\n(speedup %.2fx with identical "
                    "results; the multi-FPGA analog)\n",
                    wall_seq, wall_par, wall_seq / wall_par);
    }
    return 0;
}
