/**
 * @file
 * Ablation: synchronization quantum of the partitioned engine.
 *
 * DIABLO's FPGAs synchronize "at a fine granularity" over serial links
 * with ~1.6 us round-trip latency; host multithreading hides that sync
 * latency (SS3.2).  In the software analog the quantum equals the
 * cross-partition lookahead: smaller quanta mean more barriers for the
 * same simulated time.  This ablation measures barrier count and wall
 * clock versus quantum, and verifies results stay bit-identical.
 */

#include <chrono>

#include "bench/bench_util.hh"
#include "fame/partition.hh"

using namespace diablo;
using namespace diablo::bench;
using namespace diablo::time_literals;
using analysis::Table;

namespace {

uint64_t
buildAndRun(SimTime link_latency, bool parallel, uint64_t *quanta,
            double *wall)
{
    fame::PartitionSet ps(4);
    std::vector<fame::PartitionSet::Channel *> chans;
    std::vector<uint64_t> checksum(4, 0);
    for (size_t i = 0; i < 4; ++i) {
        chans.push_back(&ps.makeChannel(i, (i + 1) % 4, link_latency));
    }
    // Token ring with deterministic per-hop state mixing.
    struct Hop {
        static void
        run(fame::PartitionSet &ps,
            std::vector<fame::PartitionSet::Channel *> &chans,
            std::vector<uint64_t> &checksum, size_t part, uint64_t token,
            int ttl, SimTime lat)
        {
            checksum[part] = checksum[part] * 1000003 + token +
                             static_cast<uint64_t>(
                                 ps.partition(part).now().toPs());
            if (ttl <= 0) {
                return;
            }
            const size_t dst = (part + 1) % ps.size();
            chans[part]->post(
                ps.partition(part).now() + lat,
                [&ps, &chans, &checksum, dst, token, ttl, lat] {
                    Hop::run(ps, chans, checksum, dst, token * 31 + 7,
                             ttl - 1, lat);
                });
        }
    };
    for (size_t i = 0; i < 4; ++i) {
        ps.partition(i).schedule(SimTime(), [&, i] {
            Hop::run(ps, chans, checksum, i, 97 + i, 400, link_latency);
        });
    }
    auto t0 = std::chrono::steady_clock::now();
    if (parallel) {
        ps.runParallel(10_ms);
    } else {
        ps.runSequential(10_ms);
    }
    *wall = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
    *quanta = ps.quantaExecuted();
    uint64_t h = 0;
    for (uint64_t c : checksum) {
        h = h * 16777619 + c;
    }
    return h;
}

} // namespace

int
main()
{
    banner("Ablation: partitioned-engine synchronization quantum",
           "SS3.2 - fine-grained inter-FPGA synchronization, 1.6 us "
           "round trip");

    Table t({"link latency (quantum)", "barriers", "wall seq (ms)",
             "wall par (ms)", "identical results"});
    for (SimTime lat : {1600_ns, 5_us, 20_us, 100_us}) {
        uint64_t q_seq = 0, q_par = 0;
        double w_seq = 0, w_par = 0;
        uint64_t h_seq = buildAndRun(lat, false, &q_seq, &w_seq);
        uint64_t h_par = buildAndRun(lat, true, &q_par, &w_par);
        t.addRow({lat.str(), Table::cell("%llu",
                                         static_cast<unsigned long long>(
                                             q_par)),
                  Table::cell("%.2f", w_seq * 1e3),
                  Table::cell("%.2f", w_par * 1e3),
                  h_seq == h_par ? "yes" : "NO"});
    }
    t.print();

    std::printf("\nsmaller lookahead -> more barriers for the same "
                "simulated time; results\nare bit-identical at every "
                "quantum (conservative synchronization), the\nproperty "
                "DIABLO relies on for repeatable distributed "
                "simulation.\n");
    return 0;
}
