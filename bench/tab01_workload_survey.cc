/**
 * @file
 * Table 1: "Workload in recent SIGCOMM papers" — 16 microbenchmark,
 * 3 trace, 2 application papers.
 */

#include "analysis/report.hh"
#include "analysis/survey.hh"
#include "bench/bench_util.hh"

using namespace diablo;
using namespace diablo::analysis;

int
main()
{
    bench::banner("Table 1: workload types in surveyed SIGCOMM papers",
                  "Table 1 (16 microbenchmark / 3 trace / 2 application)");

    int micro = 0, trace = 0, app = 0;
    for (const auto &e : sigcommSurvey()) {
        switch (e.workload) {
          case SurveyWorkload::Microbenchmark: ++micro; break;
          case SurveyWorkload::Trace: ++trace; break;
          case SurveyWorkload::Application: ++app; break;
        }
    }

    Table t({"Types", "Microbenchmark", "Trace", "Application"});
    t.addRow({"Number of Papers", Table::cell("%d", micro),
              Table::cell("%d", trace), Table::cell("%d", app)});
    t.print();

    std::printf("\npaper reference row:      16                3       2\n");
    std::printf("match: %s\n",
                (micro == 16 && trace == 3 && app == 2) ? "EXACT" : "NO");
    return 0;
}
