/**
 * @file
 * Table 2: "Rack FPGA resource utilization on Xilinx Virtex-5 LX155T
 * after place and route" — regenerated from the parametric FPGA
 * resource model, plus the scaling projections the model supports.
 */

#include "analysis/report.hh"
#include "bench/bench_util.hh"
#include "fame/resource_model.hh"

using namespace diablo;
using namespace diablo::fame;
using analysis::Table;

namespace {

std::vector<std::string>
row(const char *name, const Resources &r)
{
    return {name, Table::cell("%.0f", r.lut), Table::cell("%.0f", r.reg),
            Table::cell("%.0f", r.bram), Table::cell("%.0f", r.lutram)};
}

} // namespace

int
main()
{
    bench::banner("Table 2: Rack FPGA resource utilization",
                  "Table 2 (Virtex-5 LX155T, 4x32-thread pipelines)");

    ResourceModel m;
    const HostConfig cfg = HostConfig::rackFpga();

    Table t({"Component Name", "LUT", "Register", "BRAM", "LUTRAM"});
    t.addRow(row("Server Models",
                 m.serverModels(cfg.server_pipelines,
                                cfg.threads_per_pipeline)));
    t.addRow(row("NIC Models", m.nicModels(cfg.nic_models)));
    t.addRow(row("Rack Switch Models",
                 m.switchModels(cfg.switch_models, cfg.switch_ports)));
    t.addRow(row("Miscellaneous", m.miscellaneous()));
    t.addRow(row("Total", m.estimate(cfg)));
    t.print();

    std::printf("\npaper Table 2:  Server 28445/37463/96/6584, "
                "NIC 9467/4785/10/752,\n  Switch 4511/3482/52/345, "
                "Misc 3395/16052/31/5058, Total 45818/62811*/189/12739\n");
    std::printf("  (*the paper's register total exceeds its own column "
                "sum by 1029;\n   this model reproduces the component "
                "rows exactly)\n\n");

    const FpgaDevice v5 = FpgaDevice::virtex5Lx155t();
    std::printf("scarcest-resource utilization on %s: %.0f%% of raw "
                "LUTs/FFs\n(paper: 95%% of logic slices occupied after "
                "routing, 90 MHz host clock)\n", v5.name.c_str(),
                100 * m.worstUtilization(cfg, v5));
    std::printf("max threads/pipeline that fit: %u (deployed: 32, 31 "
                "used for servers)\n", m.maxThreadsThatFit(cfg, v5));

    const FpgaDevice modern = FpgaDevice::ultrascale20nm();
    std::printf("\n2015 20nm-device projection: %u threads/pipeline "
                "would fit (paper SS3.4:\n32,000 nodes on 32 FPGAs)\n",
                m.maxThreadsThatFit(cfg, modern));
    return 0;
}
