# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(switchm_test "/root/repo/build/tests/switchm_test")
set_tests_properties(switchm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;28;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(os_test "/root/repo/build/tests/os_test")
set_tests_properties(os_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;37;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(topo_test "/root/repo/build/tests/topo_test")
set_tests_properties(topo_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;50;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;55;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(apps_test "/root/repo/build/tests/apps_test")
set_tests_properties(apps_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;61;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(isa_test "/root/repo/build/tests/isa_test")
set_tests_properties(isa_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;68;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fame_test "/root/repo/build/tests/fame_test")
set_tests_properties(fame_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;74;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;81;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nic_test "/root/repo/build/tests/nic_test")
set_tests_properties(nic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;86;diablo_test;/root/repo/tests/CMakeLists.txt;0;")
