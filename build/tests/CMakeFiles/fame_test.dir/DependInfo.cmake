
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fame/models_test.cc" "tests/CMakeFiles/fame_test.dir/fame/models_test.cc.o" "gcc" "tests/CMakeFiles/fame_test.dir/fame/models_test.cc.o.d"
  "/root/repo/tests/fame/partition_test.cc" "tests/CMakeFiles/fame_test.dir/fame/partition_test.cc.o" "gcc" "tests/CMakeFiles/fame_test.dir/fame/partition_test.cc.o.d"
  "/root/repo/tests/fame/resource_model_test.cc" "tests/CMakeFiles/fame_test.dir/fame/resource_model_test.cc.o" "gcc" "tests/CMakeFiles/fame_test.dir/fame/resource_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fame/CMakeFiles/diablo_fame.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/diablo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
