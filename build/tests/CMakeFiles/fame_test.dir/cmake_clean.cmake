file(REMOVE_RECURSE
  "CMakeFiles/fame_test.dir/fame/models_test.cc.o"
  "CMakeFiles/fame_test.dir/fame/models_test.cc.o.d"
  "CMakeFiles/fame_test.dir/fame/partition_test.cc.o"
  "CMakeFiles/fame_test.dir/fame/partition_test.cc.o.d"
  "CMakeFiles/fame_test.dir/fame/resource_model_test.cc.o"
  "CMakeFiles/fame_test.dir/fame/resource_model_test.cc.o.d"
  "fame_test"
  "fame_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
