# Empty dependencies file for fame_test.
# This may be replaced when dependencies are built.
