file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/config_test.cc.o"
  "CMakeFiles/core_test.dir/core/config_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/event_test.cc.o"
  "CMakeFiles/core_test.dir/core/event_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/random_test.cc.o"
  "CMakeFiles/core_test.dir/core/random_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/stats_test.cc.o"
  "CMakeFiles/core_test.dir/core/stats_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/task_test.cc.o"
  "CMakeFiles/core_test.dir/core/task_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/time_test.cc.o"
  "CMakeFiles/core_test.dir/core/time_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/units_test.cc.o"
  "CMakeFiles/core_test.dir/core/units_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
