
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/config_test.cc" "tests/CMakeFiles/core_test.dir/core/config_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/config_test.cc.o.d"
  "/root/repo/tests/core/event_test.cc" "tests/CMakeFiles/core_test.dir/core/event_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/event_test.cc.o.d"
  "/root/repo/tests/core/random_test.cc" "tests/CMakeFiles/core_test.dir/core/random_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/random_test.cc.o.d"
  "/root/repo/tests/core/stats_test.cc" "tests/CMakeFiles/core_test.dir/core/stats_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/stats_test.cc.o.d"
  "/root/repo/tests/core/task_test.cc" "tests/CMakeFiles/core_test.dir/core/task_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/task_test.cc.o.d"
  "/root/repo/tests/core/time_test.cc" "tests/CMakeFiles/core_test.dir/core/time_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/time_test.cc.o.d"
  "/root/repo/tests/core/units_test.cc" "tests/CMakeFiles/core_test.dir/core/units_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/units_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/diablo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
