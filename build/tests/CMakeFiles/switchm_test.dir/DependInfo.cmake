
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/switchm/buffer_manager_test.cc" "tests/CMakeFiles/switchm_test.dir/switchm/buffer_manager_test.cc.o" "gcc" "tests/CMakeFiles/switchm_test.dir/switchm/buffer_manager_test.cc.o.d"
  "/root/repo/tests/switchm/circuit_switch_test.cc" "tests/CMakeFiles/switchm_test.dir/switchm/circuit_switch_test.cc.o" "gcc" "tests/CMakeFiles/switchm_test.dir/switchm/circuit_switch_test.cc.o.d"
  "/root/repo/tests/switchm/output_queue_switch_test.cc" "tests/CMakeFiles/switchm_test.dir/switchm/output_queue_switch_test.cc.o" "gcc" "tests/CMakeFiles/switchm_test.dir/switchm/output_queue_switch_test.cc.o.d"
  "/root/repo/tests/switchm/switch_property_test.cc" "tests/CMakeFiles/switchm_test.dir/switchm/switch_property_test.cc.o" "gcc" "tests/CMakeFiles/switchm_test.dir/switchm/switch_property_test.cc.o.d"
  "/root/repo/tests/switchm/voq_switch_test.cc" "tests/CMakeFiles/switchm_test.dir/switchm/voq_switch_test.cc.o" "gcc" "tests/CMakeFiles/switchm_test.dir/switchm/voq_switch_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/switchm/CMakeFiles/diablo_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diablo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/diablo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
