file(REMOVE_RECURSE
  "CMakeFiles/switchm_test.dir/switchm/buffer_manager_test.cc.o"
  "CMakeFiles/switchm_test.dir/switchm/buffer_manager_test.cc.o.d"
  "CMakeFiles/switchm_test.dir/switchm/circuit_switch_test.cc.o"
  "CMakeFiles/switchm_test.dir/switchm/circuit_switch_test.cc.o.d"
  "CMakeFiles/switchm_test.dir/switchm/output_queue_switch_test.cc.o"
  "CMakeFiles/switchm_test.dir/switchm/output_queue_switch_test.cc.o.d"
  "CMakeFiles/switchm_test.dir/switchm/switch_property_test.cc.o"
  "CMakeFiles/switchm_test.dir/switchm/switch_property_test.cc.o.d"
  "CMakeFiles/switchm_test.dir/switchm/voq_switch_test.cc.o"
  "CMakeFiles/switchm_test.dir/switchm/voq_switch_test.cc.o.d"
  "switchm_test"
  "switchm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
