# Empty dependencies file for switchm_test.
# This may be replaced when dependencies are built.
