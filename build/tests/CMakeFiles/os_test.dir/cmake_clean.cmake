file(REMOVE_RECURSE
  "CMakeFiles/os_test.dir/os/cpu_test.cc.o"
  "CMakeFiles/os_test.dir/os/cpu_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/epoll_test.cc.o"
  "CMakeFiles/os_test.dir/os/epoll_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/kernel_detail_test.cc.o"
  "CMakeFiles/os_test.dir/os/kernel_detail_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/multicore_test.cc.o"
  "CMakeFiles/os_test.dir/os/multicore_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/tcp_loss_test.cc.o"
  "CMakeFiles/os_test.dir/os/tcp_loss_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/tcp_property_test.cc.o"
  "CMakeFiles/os_test.dir/os/tcp_property_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/tcp_test.cc.o"
  "CMakeFiles/os_test.dir/os/tcp_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/udp_test.cc.o"
  "CMakeFiles/os_test.dir/os/udp_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/wait_queue_test.cc.o"
  "CMakeFiles/os_test.dir/os/wait_queue_test.cc.o.d"
  "os_test"
  "os_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
