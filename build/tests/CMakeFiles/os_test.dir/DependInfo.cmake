
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/os/cpu_test.cc" "tests/CMakeFiles/os_test.dir/os/cpu_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/cpu_test.cc.o.d"
  "/root/repo/tests/os/epoll_test.cc" "tests/CMakeFiles/os_test.dir/os/epoll_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/epoll_test.cc.o.d"
  "/root/repo/tests/os/kernel_detail_test.cc" "tests/CMakeFiles/os_test.dir/os/kernel_detail_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/kernel_detail_test.cc.o.d"
  "/root/repo/tests/os/multicore_test.cc" "tests/CMakeFiles/os_test.dir/os/multicore_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/multicore_test.cc.o.d"
  "/root/repo/tests/os/tcp_loss_test.cc" "tests/CMakeFiles/os_test.dir/os/tcp_loss_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/tcp_loss_test.cc.o.d"
  "/root/repo/tests/os/tcp_property_test.cc" "tests/CMakeFiles/os_test.dir/os/tcp_property_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/tcp_property_test.cc.o.d"
  "/root/repo/tests/os/tcp_test.cc" "tests/CMakeFiles/os_test.dir/os/tcp_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/tcp_test.cc.o.d"
  "/root/repo/tests/os/udp_test.cc" "tests/CMakeFiles/os_test.dir/os/udp_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/udp_test.cc.o.d"
  "/root/repo/tests/os/wait_queue_test.cc" "tests/CMakeFiles/os_test.dir/os/wait_queue_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/wait_queue_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/diablo_os.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/diablo_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diablo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/diablo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
