# Empty dependencies file for fig02_testbed_survey.
# This may be replaced when dependencies are built.
