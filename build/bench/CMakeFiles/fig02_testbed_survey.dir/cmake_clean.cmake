file(REMOVE_RECURSE
  "CMakeFiles/fig02_testbed_survey.dir/fig02_testbed_survey.cc.o"
  "CMakeFiles/fig02_testbed_survey.dir/fig02_testbed_survey.cc.o.d"
  "fig02_testbed_survey"
  "fig02_testbed_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_testbed_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
