file(REMOVE_RECURSE
  "CMakeFiles/fig08_memcached_singlerack.dir/fig08_memcached_singlerack.cc.o"
  "CMakeFiles/fig08_memcached_singlerack.dir/fig08_memcached_singlerack.cc.o.d"
  "fig08_memcached_singlerack"
  "fig08_memcached_singlerack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_memcached_singlerack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
