# Empty compiler generated dependencies file for fig08_memcached_singlerack.
# This may be replaced when dependencies are built.
