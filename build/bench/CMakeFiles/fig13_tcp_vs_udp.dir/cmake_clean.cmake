file(REMOVE_RECURSE
  "CMakeFiles/fig13_tcp_vs_udp.dir/fig13_tcp_vs_udp.cc.o"
  "CMakeFiles/fig13_tcp_vs_udp.dir/fig13_tcp_vs_udp.cc.o.d"
  "fig13_tcp_vs_udp"
  "fig13_tcp_vs_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tcp_vs_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
