# Empty dependencies file for fig13_tcp_vs_udp.
# This may be replaced when dependencies are built.
