
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/microbench_engine.cc" "bench/CMakeFiles/microbench_engine.dir/microbench_engine.cc.o" "gcc" "bench/CMakeFiles/microbench_engine.dir/microbench_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/switchm/CMakeFiles/diablo_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diablo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/diablo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
