# Empty dependencies file for fig12_switch_latency_tail.
# This may be replaced when dependencies are built.
