file(REMOVE_RECURSE
  "CMakeFiles/fig12_switch_latency_tail.dir/fig12_switch_latency_tail.cc.o"
  "CMakeFiles/fig12_switch_latency_tail.dir/fig12_switch_latency_tail.cc.o.d"
  "fig12_switch_latency_tail"
  "fig12_switch_latency_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_switch_latency_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
