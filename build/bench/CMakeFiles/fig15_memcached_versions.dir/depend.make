# Empty dependencies file for fig15_memcached_versions.
# This may be replaced when dependencies are built.
