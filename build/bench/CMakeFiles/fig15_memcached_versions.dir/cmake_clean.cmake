file(REMOVE_RECURSE
  "CMakeFiles/fig15_memcached_versions.dir/fig15_memcached_versions.cc.o"
  "CMakeFiles/fig15_memcached_versions.dir/fig15_memcached_versions.cc.o.d"
  "fig15_memcached_versions"
  "fig15_memcached_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_memcached_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
