# Empty compiler generated dependencies file for tab02_fpga_resources.
# This may be replaced when dependencies are built.
