file(REMOVE_RECURSE
  "CMakeFiles/tab_cost.dir/tab_cost.cc.o"
  "CMakeFiles/tab_cost.dir/tab_cost.cc.o.d"
  "tab_cost"
  "tab_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
