# Empty compiler generated dependencies file for fig14_kernel_versions.
# This may be replaced when dependencies are built.
