file(REMOVE_RECURSE
  "CMakeFiles/fig14_kernel_versions.dir/fig14_kernel_versions.cc.o"
  "CMakeFiles/fig14_kernel_versions.dir/fig14_kernel_versions.cc.o.d"
  "fig14_kernel_versions"
  "fig14_kernel_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_kernel_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
