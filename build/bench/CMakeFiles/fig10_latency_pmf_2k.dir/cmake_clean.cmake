file(REMOVE_RECURSE
  "CMakeFiles/fig10_latency_pmf_2k.dir/fig10_latency_pmf_2k.cc.o"
  "CMakeFiles/fig10_latency_pmf_2k.dir/fig10_latency_pmf_2k.cc.o.d"
  "fig10_latency_pmf_2k"
  "fig10_latency_pmf_2k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_latency_pmf_2k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
