# Empty compiler generated dependencies file for fig10_latency_pmf_2k.
# This may be replaced when dependencies are built.
