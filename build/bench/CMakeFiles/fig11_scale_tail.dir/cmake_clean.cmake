file(REMOVE_RECURSE
  "CMakeFiles/fig11_scale_tail.dir/fig11_scale_tail.cc.o"
  "CMakeFiles/fig11_scale_tail.dir/fig11_scale_tail.cc.o.d"
  "fig11_scale_tail"
  "fig11_scale_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scale_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
