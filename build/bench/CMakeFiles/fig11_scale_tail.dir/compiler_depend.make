# Empty compiler generated dependencies file for fig11_scale_tail.
# This may be replaced when dependencies are built.
