# Empty dependencies file for fig06b_incast_10g.
# This may be replaced when dependencies are built.
