file(REMOVE_RECURSE
  "CMakeFiles/fig06b_incast_10g.dir/fig06b_incast_10g.cc.o"
  "CMakeFiles/fig06b_incast_10g.dir/fig06b_incast_10g.cc.o.d"
  "fig06b_incast_10g"
  "fig06b_incast_10g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06b_incast_10g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
