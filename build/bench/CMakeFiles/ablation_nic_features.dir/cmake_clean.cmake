file(REMOVE_RECURSE
  "CMakeFiles/ablation_nic_features.dir/ablation_nic_features.cc.o"
  "CMakeFiles/ablation_nic_features.dir/ablation_nic_features.cc.o.d"
  "ablation_nic_features"
  "ablation_nic_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nic_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
