# Empty dependencies file for fig06a_incast_1g.
# This may be replaced when dependencies are built.
