file(REMOVE_RECURSE
  "CMakeFiles/fig06a_incast_1g.dir/fig06a_incast_1g.cc.o"
  "CMakeFiles/fig06a_incast_1g.dir/fig06a_incast_1g.cc.o.d"
  "fig06a_incast_1g"
  "fig06a_incast_1g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06a_incast_1g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
