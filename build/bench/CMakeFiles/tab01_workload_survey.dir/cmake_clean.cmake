file(REMOVE_RECURSE
  "CMakeFiles/tab01_workload_survey.dir/tab01_workload_survey.cc.o"
  "CMakeFiles/tab01_workload_survey.dir/tab01_workload_survey.cc.o.d"
  "tab01_workload_survey"
  "tab01_workload_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_workload_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
