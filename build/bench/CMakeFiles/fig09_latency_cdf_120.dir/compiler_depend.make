# Empty compiler generated dependencies file for fig09_latency_cdf_120.
# This may be replaced when dependencies are built.
