file(REMOVE_RECURSE
  "CMakeFiles/fig09_latency_cdf_120.dir/fig09_latency_cdf_120.cc.o"
  "CMakeFiles/fig09_latency_cdf_120.dir/fig09_latency_cdf_120.cc.o.d"
  "fig09_latency_cdf_120"
  "fig09_latency_cdf_120.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_latency_cdf_120.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
