file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_quantum.dir/ablation_sync_quantum.cc.o"
  "CMakeFiles/ablation_sync_quantum.dir/ablation_sync_quantum.cc.o.d"
  "ablation_sync_quantum"
  "ablation_sync_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
