# Empty compiler generated dependencies file for ablation_sync_quantum.
# This may be replaced when dependencies are built.
