file(REMOVE_RECURSE
  "CMakeFiles/tab_simperf.dir/tab_simperf.cc.o"
  "CMakeFiles/tab_simperf.dir/tab_simperf.cc.o.d"
  "tab_simperf"
  "tab_simperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_simperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
