# Empty dependencies file for tab_simperf.
# This may be replaced when dependencies are built.
