# Empty dependencies file for ablation_buffer_policies.
# This may be replaced when dependencies are built.
