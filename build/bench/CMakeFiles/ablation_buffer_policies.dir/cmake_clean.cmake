file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_policies.dir/ablation_buffer_policies.cc.o"
  "CMakeFiles/ablation_buffer_policies.dir/ablation_buffer_policies.cc.o.d"
  "ablation_buffer_policies"
  "ablation_buffer_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
