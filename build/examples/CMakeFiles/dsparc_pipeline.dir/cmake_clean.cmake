file(REMOVE_RECURSE
  "CMakeFiles/dsparc_pipeline.dir/dsparc_pipeline.cpp.o"
  "CMakeFiles/dsparc_pipeline.dir/dsparc_pipeline.cpp.o.d"
  "dsparc_pipeline"
  "dsparc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsparc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
