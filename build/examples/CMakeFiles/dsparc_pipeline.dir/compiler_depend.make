# Empty compiler generated dependencies file for dsparc_pipeline.
# This may be replaced when dependencies are built.
