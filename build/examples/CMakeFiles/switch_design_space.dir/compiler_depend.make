# Empty compiler generated dependencies file for switch_design_space.
# This may be replaced when dependencies are built.
