file(REMOVE_RECURSE
  "CMakeFiles/switch_design_space.dir/switch_design_space.cpp.o"
  "CMakeFiles/switch_design_space.dir/switch_design_space.cpp.o.d"
  "switch_design_space"
  "switch_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
