file(REMOVE_RECURSE
  "CMakeFiles/memcached_cluster.dir/memcached_cluster.cpp.o"
  "CMakeFiles/memcached_cluster.dir/memcached_cluster.cpp.o.d"
  "memcached_cluster"
  "memcached_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcached_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
