file(REMOVE_RECURSE
  "CMakeFiles/diablo_run.dir/diablo_run.cc.o"
  "CMakeFiles/diablo_run.dir/diablo_run.cc.o.d"
  "diablo_run"
  "diablo_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
