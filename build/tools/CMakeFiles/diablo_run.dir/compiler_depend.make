# Empty compiler generated dependencies file for diablo_run.
# This may be replaced when dependencies are built.
