# Empty dependencies file for mc_debug.
# This may be replaced when dependencies are built.
