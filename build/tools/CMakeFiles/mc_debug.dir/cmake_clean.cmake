file(REMOVE_RECURSE
  "CMakeFiles/mc_debug.dir/mc_debug.cc.o"
  "CMakeFiles/mc_debug.dir/mc_debug.cc.o.d"
  "mc_debug"
  "mc_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
