
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/mc_debug.cc" "tools/CMakeFiles/mc_debug.dir/mc_debug.cc.o" "gcc" "tools/CMakeFiles/mc_debug.dir/mc_debug.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/diablo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/diablo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/diablo_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/switchm/CMakeFiles/diablo_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/diablo_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/diablo_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diablo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/diablo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
