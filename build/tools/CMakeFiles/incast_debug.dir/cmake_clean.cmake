file(REMOVE_RECURSE
  "CMakeFiles/incast_debug.dir/incast_debug.cc.o"
  "CMakeFiles/incast_debug.dir/incast_debug.cc.o.d"
  "incast_debug"
  "incast_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incast_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
