# Empty compiler generated dependencies file for incast_debug.
# This may be replaced when dependencies are built.
