# Empty dependencies file for diablo_isa.
# This may be replaced when dependencies are built.
