file(REMOVE_RECURSE
  "libdiablo_isa.a"
)
