file(REMOVE_RECURSE
  "CMakeFiles/diablo_isa.dir/assembler.cc.o"
  "CMakeFiles/diablo_isa.dir/assembler.cc.o.d"
  "CMakeFiles/diablo_isa.dir/interpreter.cc.o"
  "CMakeFiles/diablo_isa.dir/interpreter.cc.o.d"
  "CMakeFiles/diablo_isa.dir/pipeline.cc.o"
  "CMakeFiles/diablo_isa.dir/pipeline.cc.o.d"
  "libdiablo_isa.a"
  "libdiablo_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
