file(REMOVE_RECURSE
  "libdiablo_core.a"
)
