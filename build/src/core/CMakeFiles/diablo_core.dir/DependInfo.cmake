
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/diablo_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/diablo_core.dir/config.cc.o.d"
  "/root/repo/src/core/event.cc" "src/core/CMakeFiles/diablo_core.dir/event.cc.o" "gcc" "src/core/CMakeFiles/diablo_core.dir/event.cc.o.d"
  "/root/repo/src/core/log.cc" "src/core/CMakeFiles/diablo_core.dir/log.cc.o" "gcc" "src/core/CMakeFiles/diablo_core.dir/log.cc.o.d"
  "/root/repo/src/core/random.cc" "src/core/CMakeFiles/diablo_core.dir/random.cc.o" "gcc" "src/core/CMakeFiles/diablo_core.dir/random.cc.o.d"
  "/root/repo/src/core/simulator.cc" "src/core/CMakeFiles/diablo_core.dir/simulator.cc.o" "gcc" "src/core/CMakeFiles/diablo_core.dir/simulator.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/diablo_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/diablo_core.dir/stats.cc.o.d"
  "/root/repo/src/core/time.cc" "src/core/CMakeFiles/diablo_core.dir/time.cc.o" "gcc" "src/core/CMakeFiles/diablo_core.dir/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
