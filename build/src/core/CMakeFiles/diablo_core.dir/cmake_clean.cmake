file(REMOVE_RECURSE
  "CMakeFiles/diablo_core.dir/config.cc.o"
  "CMakeFiles/diablo_core.dir/config.cc.o.d"
  "CMakeFiles/diablo_core.dir/event.cc.o"
  "CMakeFiles/diablo_core.dir/event.cc.o.d"
  "CMakeFiles/diablo_core.dir/log.cc.o"
  "CMakeFiles/diablo_core.dir/log.cc.o.d"
  "CMakeFiles/diablo_core.dir/random.cc.o"
  "CMakeFiles/diablo_core.dir/random.cc.o.d"
  "CMakeFiles/diablo_core.dir/simulator.cc.o"
  "CMakeFiles/diablo_core.dir/simulator.cc.o.d"
  "CMakeFiles/diablo_core.dir/stats.cc.o"
  "CMakeFiles/diablo_core.dir/stats.cc.o.d"
  "CMakeFiles/diablo_core.dir/time.cc.o"
  "CMakeFiles/diablo_core.dir/time.cc.o.d"
  "libdiablo_core.a"
  "libdiablo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
