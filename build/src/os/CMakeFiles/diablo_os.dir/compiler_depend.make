# Empty compiler generated dependencies file for diablo_os.
# This may be replaced when dependencies are built.
