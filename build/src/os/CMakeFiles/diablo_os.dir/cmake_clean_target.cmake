file(REMOVE_RECURSE
  "libdiablo_os.a"
)
