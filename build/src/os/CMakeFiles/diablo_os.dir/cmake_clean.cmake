file(REMOVE_RECURSE
  "CMakeFiles/diablo_os.dir/cpu.cc.o"
  "CMakeFiles/diablo_os.dir/cpu.cc.o.d"
  "CMakeFiles/diablo_os.dir/kernel.cc.o"
  "CMakeFiles/diablo_os.dir/kernel.cc.o.d"
  "CMakeFiles/diablo_os.dir/kernel_profile.cc.o"
  "CMakeFiles/diablo_os.dir/kernel_profile.cc.o.d"
  "CMakeFiles/diablo_os.dir/socket.cc.o"
  "CMakeFiles/diablo_os.dir/socket.cc.o.d"
  "CMakeFiles/diablo_os.dir/tcp.cc.o"
  "CMakeFiles/diablo_os.dir/tcp.cc.o.d"
  "libdiablo_os.a"
  "libdiablo_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
