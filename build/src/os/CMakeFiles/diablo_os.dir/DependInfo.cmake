
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/cpu.cc" "src/os/CMakeFiles/diablo_os.dir/cpu.cc.o" "gcc" "src/os/CMakeFiles/diablo_os.dir/cpu.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/diablo_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/diablo_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/kernel_profile.cc" "src/os/CMakeFiles/diablo_os.dir/kernel_profile.cc.o" "gcc" "src/os/CMakeFiles/diablo_os.dir/kernel_profile.cc.o.d"
  "/root/repo/src/os/socket.cc" "src/os/CMakeFiles/diablo_os.dir/socket.cc.o" "gcc" "src/os/CMakeFiles/diablo_os.dir/socket.cc.o.d"
  "/root/repo/src/os/tcp.cc" "src/os/CMakeFiles/diablo_os.dir/tcp.cc.o" "gcc" "src/os/CMakeFiles/diablo_os.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/diablo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diablo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
