
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fame/cost_model.cc" "src/fame/CMakeFiles/diablo_fame.dir/cost_model.cc.o" "gcc" "src/fame/CMakeFiles/diablo_fame.dir/cost_model.cc.o.d"
  "/root/repo/src/fame/partition.cc" "src/fame/CMakeFiles/diablo_fame.dir/partition.cc.o" "gcc" "src/fame/CMakeFiles/diablo_fame.dir/partition.cc.o.d"
  "/root/repo/src/fame/perf_model.cc" "src/fame/CMakeFiles/diablo_fame.dir/perf_model.cc.o" "gcc" "src/fame/CMakeFiles/diablo_fame.dir/perf_model.cc.o.d"
  "/root/repo/src/fame/resource_model.cc" "src/fame/CMakeFiles/diablo_fame.dir/resource_model.cc.o" "gcc" "src/fame/CMakeFiles/diablo_fame.dir/resource_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/diablo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
