file(REMOVE_RECURSE
  "libdiablo_fame.a"
)
