file(REMOVE_RECURSE
  "CMakeFiles/diablo_fame.dir/cost_model.cc.o"
  "CMakeFiles/diablo_fame.dir/cost_model.cc.o.d"
  "CMakeFiles/diablo_fame.dir/partition.cc.o"
  "CMakeFiles/diablo_fame.dir/partition.cc.o.d"
  "CMakeFiles/diablo_fame.dir/perf_model.cc.o"
  "CMakeFiles/diablo_fame.dir/perf_model.cc.o.d"
  "CMakeFiles/diablo_fame.dir/resource_model.cc.o"
  "CMakeFiles/diablo_fame.dir/resource_model.cc.o.d"
  "libdiablo_fame.a"
  "libdiablo_fame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_fame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
