# Empty dependencies file for diablo_fame.
# This may be replaced when dependencies are built.
