file(REMOVE_RECURSE
  "CMakeFiles/diablo_net.dir/link.cc.o"
  "CMakeFiles/diablo_net.dir/link.cc.o.d"
  "CMakeFiles/diablo_net.dir/packet.cc.o"
  "CMakeFiles/diablo_net.dir/packet.cc.o.d"
  "libdiablo_net.a"
  "libdiablo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
