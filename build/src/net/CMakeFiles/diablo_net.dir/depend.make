# Empty dependencies file for diablo_net.
# This may be replaced when dependencies are built.
