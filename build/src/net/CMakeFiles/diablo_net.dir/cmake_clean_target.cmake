file(REMOVE_RECURSE
  "libdiablo_net.a"
)
