file(REMOVE_RECURSE
  "libdiablo_analysis.a"
)
