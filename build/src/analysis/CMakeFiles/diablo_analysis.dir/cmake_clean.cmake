file(REMOVE_RECURSE
  "CMakeFiles/diablo_analysis.dir/report.cc.o"
  "CMakeFiles/diablo_analysis.dir/report.cc.o.d"
  "CMakeFiles/diablo_analysis.dir/survey.cc.o"
  "CMakeFiles/diablo_analysis.dir/survey.cc.o.d"
  "libdiablo_analysis.a"
  "libdiablo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
