file(REMOVE_RECURSE
  "CMakeFiles/diablo_sim.dir/cluster.cc.o"
  "CMakeFiles/diablo_sim.dir/cluster.cc.o.d"
  "libdiablo_sim.a"
  "libdiablo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
