# Empty dependencies file for diablo_sim.
# This may be replaced when dependencies are built.
