file(REMOVE_RECURSE
  "CMakeFiles/diablo_switch.dir/buffer_manager.cc.o"
  "CMakeFiles/diablo_switch.dir/buffer_manager.cc.o.d"
  "CMakeFiles/diablo_switch.dir/circuit_switch.cc.o"
  "CMakeFiles/diablo_switch.dir/circuit_switch.cc.o.d"
  "CMakeFiles/diablo_switch.dir/output_queue_switch.cc.o"
  "CMakeFiles/diablo_switch.dir/output_queue_switch.cc.o.d"
  "CMakeFiles/diablo_switch.dir/switch_params.cc.o"
  "CMakeFiles/diablo_switch.dir/switch_params.cc.o.d"
  "CMakeFiles/diablo_switch.dir/voq_switch.cc.o"
  "CMakeFiles/diablo_switch.dir/voq_switch.cc.o.d"
  "libdiablo_switch.a"
  "libdiablo_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
