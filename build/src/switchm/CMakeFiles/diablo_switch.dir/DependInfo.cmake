
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switchm/buffer_manager.cc" "src/switchm/CMakeFiles/diablo_switch.dir/buffer_manager.cc.o" "gcc" "src/switchm/CMakeFiles/diablo_switch.dir/buffer_manager.cc.o.d"
  "/root/repo/src/switchm/circuit_switch.cc" "src/switchm/CMakeFiles/diablo_switch.dir/circuit_switch.cc.o" "gcc" "src/switchm/CMakeFiles/diablo_switch.dir/circuit_switch.cc.o.d"
  "/root/repo/src/switchm/output_queue_switch.cc" "src/switchm/CMakeFiles/diablo_switch.dir/output_queue_switch.cc.o" "gcc" "src/switchm/CMakeFiles/diablo_switch.dir/output_queue_switch.cc.o.d"
  "/root/repo/src/switchm/switch_params.cc" "src/switchm/CMakeFiles/diablo_switch.dir/switch_params.cc.o" "gcc" "src/switchm/CMakeFiles/diablo_switch.dir/switch_params.cc.o.d"
  "/root/repo/src/switchm/voq_switch.cc" "src/switchm/CMakeFiles/diablo_switch.dir/voq_switch.cc.o" "gcc" "src/switchm/CMakeFiles/diablo_switch.dir/voq_switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/diablo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diablo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
