file(REMOVE_RECURSE
  "libdiablo_switch.a"
)
