# Empty dependencies file for diablo_switch.
# This may be replaced when dependencies are built.
