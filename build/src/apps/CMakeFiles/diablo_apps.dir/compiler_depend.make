# Empty compiler generated dependencies file for diablo_apps.
# This may be replaced when dependencies are built.
