file(REMOVE_RECURSE
  "libdiablo_apps.a"
)
