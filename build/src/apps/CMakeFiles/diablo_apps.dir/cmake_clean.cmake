file(REMOVE_RECURSE
  "CMakeFiles/diablo_apps.dir/background_noise.cc.o"
  "CMakeFiles/diablo_apps.dir/background_noise.cc.o.d"
  "CMakeFiles/diablo_apps.dir/incast.cc.o"
  "CMakeFiles/diablo_apps.dir/incast.cc.o.d"
  "CMakeFiles/diablo_apps.dir/mc_experiment.cc.o"
  "CMakeFiles/diablo_apps.dir/mc_experiment.cc.o.d"
  "CMakeFiles/diablo_apps.dir/memcached.cc.o"
  "CMakeFiles/diablo_apps.dir/memcached.cc.o.d"
  "CMakeFiles/diablo_apps.dir/workload.cc.o"
  "CMakeFiles/diablo_apps.dir/workload.cc.o.d"
  "libdiablo_apps.a"
  "libdiablo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
