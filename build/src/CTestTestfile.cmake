# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("net")
subdirs("switchm")
subdirs("os")
subdirs("nic")
subdirs("topo")
subdirs("sim")
subdirs("apps")
subdirs("isa")
subdirs("fame")
subdirs("analysis")
