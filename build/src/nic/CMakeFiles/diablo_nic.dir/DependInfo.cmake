
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/nic_model.cc" "src/nic/CMakeFiles/diablo_nic.dir/nic_model.cc.o" "gcc" "src/nic/CMakeFiles/diablo_nic.dir/nic_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/diablo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diablo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/diablo_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
