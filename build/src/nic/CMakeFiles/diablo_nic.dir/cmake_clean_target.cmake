file(REMOVE_RECURSE
  "libdiablo_nic.a"
)
