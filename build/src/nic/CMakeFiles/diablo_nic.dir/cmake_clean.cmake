file(REMOVE_RECURSE
  "CMakeFiles/diablo_nic.dir/nic_model.cc.o"
  "CMakeFiles/diablo_nic.dir/nic_model.cc.o.d"
  "libdiablo_nic.a"
  "libdiablo_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
