# Empty dependencies file for diablo_nic.
# This may be replaced when dependencies are built.
