file(REMOVE_RECURSE
  "CMakeFiles/diablo_topo.dir/clos.cc.o"
  "CMakeFiles/diablo_topo.dir/clos.cc.o.d"
  "libdiablo_topo.a"
  "libdiablo_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
