file(REMOVE_RECURSE
  "libdiablo_topo.a"
)
