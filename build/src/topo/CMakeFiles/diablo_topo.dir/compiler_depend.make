# Empty compiler generated dependencies file for diablo_topo.
# This may be replaced when dependencies are built.
