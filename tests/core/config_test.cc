#include <gtest/gtest.h>

#include <cstdint>

#include "core/config.hh"

namespace diablo {
namespace {

TEST(Config, SetGetTyped)
{
    Config c;
    c.set("a.b", int64_t{42});
    c.set("x", 2.5);
    c.set("flag", true);
    c.set("name", "rack0");
    EXPECT_EQ(c.getInt("a.b", 0), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("x", 0), 2.5);
    EXPECT_TRUE(c.getBool("flag", false));
    EXPECT_EQ(c.getString("name", ""), "rack0");
}

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", -7), -7);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("missing", false));
    EXPECT_EQ(c.getString("missing", "dft"), "dft");
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, IntAcceptsHex)
{
    Config c;
    c.set("addr", "0x1000");
    EXPECT_EQ(c.getInt("addr", 0), 0x1000);
    EXPECT_EQ(c.getUint("addr", 0), 0x1000u);
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on"}) {
        c.set("k", t);
        EXPECT_TRUE(c.getBool("k", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off"}) {
        c.set("k", f);
        EXPECT_FALSE(c.getBool("k", true)) << f;
    }
}

TEST(Config, ParseAssignment)
{
    Config c;
    EXPECT_TRUE(c.parseAssignment("switch.rack.buffer_bytes=4096"));
    EXPECT_EQ(c.getInt("switch.rack.buffer_bytes", 0), 4096);
    EXPECT_FALSE(c.parseAssignment("notanassignment"));
    EXPECT_FALSE(c.parseAssignment("=value"));
    EXPECT_TRUE(c.parseAssignment("empty="));
    EXPECT_EQ(c.getString("empty", "x"), "");
}

TEST(Config, MergeOverrides)
{
    Config base, over;
    base.set("a", 1);
    base.set("b", 2);
    over.set("b", 20);
    over.set("c", 30);
    base.merge(over);
    EXPECT_EQ(base.getInt("a", 0), 1);
    EXPECT_EQ(base.getInt("b", 0), 20);
    EXPECT_EQ(base.getInt("c", 0), 30);
}

TEST(Config, KeysSorted)
{
    Config c;
    c.set("zz", 1);
    c.set("aa", 2);
    c.set("mm", 3);
    auto ks = c.keys();
    ASSERT_EQ(ks.size(), 3u);
    EXPECT_EQ(ks[0], "aa");
    EXPECT_EQ(ks[1], "mm");
    EXPECT_EQ(ks[2], "zz");
}

TEST(Config, LargeInBoundsValuesStillParse)
{
    Config c;
    c.set("imax", "9223372036854775807");
    c.set("imin", "-9223372036854775808");
    c.set("umax", "18446744073709551615");
    c.set("dbig", "1e308");
    EXPECT_EQ(c.getInt("imax", 0), INT64_MAX);
    EXPECT_EQ(c.getInt("imin", 0), INT64_MIN);
    EXPECT_EQ(c.getUint("umax", 0), UINT64_MAX);
    EXPECT_DOUBLE_EQ(c.getDouble("dbig", 0), 1e308);
}

TEST(ConfigDeathTest, IntOverflowIsFatal)
{
    Config c;
    c.set("k", "9223372036854775808"); // INT64_MAX + 1
    EXPECT_DEATH(c.getInt("k", 0), "out of int64 range");
    c.set("k", "-9223372036854775809");
    EXPECT_DEATH(c.getInt("k", 0), "out of int64 range");
}

TEST(ConfigDeathTest, UintRejectsNegative)
{
    // strtoull happily wraps "-1" to 2^64-1; the reader must not.
    Config c;
    c.set("k", "-1");
    EXPECT_DEATH(c.getUint("k", 0), "negative");
}

TEST(ConfigDeathTest, UintOverflowIsFatal)
{
    Config c;
    c.set("k", "18446744073709551616"); // UINT64_MAX + 1
    EXPECT_DEATH(c.getUint("k", 0), "out of uint64 range");
}

TEST(ConfigDeathTest, DoubleOverflowIsFatal)
{
    Config c;
    c.set("k", "1e999");
    EXPECT_DEATH(c.getDouble("k", 0), "overflows a double");
}

} // namespace
} // namespace diablo
