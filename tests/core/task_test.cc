#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.hh"
#include "core/task.hh"

namespace diablo {
namespace {

using namespace diablo::time_literals;

Task<>
sleeper(Simulator &sim, SimTime d, std::vector<int> &log, int id)
{
    co_await sim.sleep(d);
    log.push_back(id);
}

TEST(Task, SleepResumesAtRightTime)
{
    Simulator sim;
    std::vector<int> log;
    sim.spawn(sleeper(sim, 100_ns, log, 1));
    sim.run();
    EXPECT_EQ(log, std::vector<int>{1});
    EXPECT_EQ(sim.now(), 100_ns);
}

TEST(Task, InterleavedSleeps)
{
    Simulator sim;
    std::vector<int> log;
    sim.spawn(sleeper(sim, 30_ns, log, 3));
    sim.spawn(sleeper(sim, 10_ns, log, 1));
    sim.spawn(sleeper(sim, 20_ns, log, 2));
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

Task<int>
computeValue(Simulator &sim)
{
    co_await sim.sleep(5_ns);
    co_return 42;
}

Task<>
parent(Simulator &sim, int &out)
{
    out = co_await computeValue(sim);
}

TEST(Task, ChildTaskReturnsValue)
{
    Simulator sim;
    int out = 0;
    sim.spawn(parent(sim, out));
    sim.run();
    EXPECT_EQ(out, 42);
    EXPECT_EQ(sim.now(), 5_ns);
}

Task<int>
deepChain(Simulator &sim, int depth)
{
    if (depth == 0) {
        co_await sim.sleep(1_ns);
        co_return 0;
    }
    int below = co_await deepChain(sim, depth - 1);
    co_return below + 1;
}

Task<>
deepRoot(Simulator &sim, int &out)
{
    out = co_await deepChain(sim, 500);
}

TEST(Task, DeepAwaitChains)
{
    Simulator sim;
    int out = -1;
    sim.spawn(deepRoot(sim, out));
    sim.run();
    EXPECT_EQ(out, 500);
}

Task<>
multiSleep(Simulator &sim, std::vector<int64_t> &times)
{
    for (int i = 0; i < 5; ++i) {
        co_await sim.sleep(10_ns);
        times.push_back(sim.now().toNs());
    }
}

TEST(Task, SequentialSleepsAccumulate)
{
    Simulator sim;
    std::vector<int64_t> times;
    sim.spawn(multiSleep(sim, times));
    sim.run();
    EXPECT_EQ(times, (std::vector<int64_t>{10, 20, 30, 40, 50}));
}

Task<>
waiterTask(OneShot<int> &gate, int &out)
{
    out = co_await gate;
}

TEST(Task, OneShotFulfillAfterWait)
{
    Simulator sim;
    OneShot<int> gate(sim);
    int out = 0;
    sim.spawn(waiterTask(gate, out));
    sim.schedule(50_ns, [&] { gate.fulfill(7); });
    sim.run();
    EXPECT_EQ(out, 7);
    EXPECT_EQ(sim.now(), 50_ns);
}

TEST(Task, OneShotFulfillBeforeWait)
{
    Simulator sim;
    OneShot<int> gate(sim);
    gate.fulfill(9);
    int out = 0;
    sim.spawn(waiterTask(gate, out));
    sim.run();
    EXPECT_EQ(out, 9);
}

TEST(Task, OneShotFirstFulfillWins)
{
    Simulator sim;
    OneShot<int> gate(sim);
    int out = 0;
    sim.spawn(waiterTask(gate, out));
    sim.schedule(10_ns, [&] { gate.fulfill(1); });
    sim.schedule(20_ns, [&] { gate.fulfill(2); });
    sim.run();
    EXPECT_EQ(out, 1);
}

Task<>
spawnerTask(Simulator &sim, std::vector<int> &log)
{
    log.push_back(1);
    sim.spawn(sleeper(sim, 5_ns, log, 2));
    co_await sim.sleep(10_ns);
    log.push_back(3);
}

TEST(Task, TasksCanSpawnTasks)
{
    Simulator sim;
    std::vector<int> log;
    sim.spawn(spawnerTask(sim, log));
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Task, ManyConcurrentTasks)
{
    Simulator sim;
    std::vector<int> log;
    for (int i = 0; i < 1000; ++i) {
        sim.spawn(sleeper(sim, SimTime::ns(i), log, i));
    }
    sim.run();
    ASSERT_EQ(log.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(log[static_cast<size_t>(i)], i);
    }
}

TEST(Task, UnstartedTaskDestroysCleanly)
{
    std::vector<int> log;
    Simulator sim;
    {
        Task<> t = sleeper(sim, 1_ns, log, 1);
        EXPECT_TRUE(t.valid());
        EXPECT_FALSE(t.done());
    } // dropped without ever running
    sim.run();
    EXPECT_TRUE(log.empty());
}

TEST(Task, SimulatorTeardownWithBlockedTasks)
{
    std::vector<int> log;
    {
        Simulator sim;
        sim.spawn(sleeper(sim, 1_sec, log, 1));
        sim.runUntil(1_ms); // leaves the task suspended
    } // Simulator destructor must reclaim the frame without running it
    EXPECT_TRUE(log.empty());
}

} // namespace
} // namespace diablo
