/**
 * @file
 * CPU topology detection: the sysfs cpu-list grammar, the fixture-dir
 * parser the placement policy consumes (a fake /sys tree describing a
 * two-socket machine), the deterministic flat fallback, and the
 * pin/save/restore affinity round trip the worker pool performs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/cpu_topology.hh"

using diablo::CpuTopology;
using diablo::parseCpuList;

namespace {

TEST(ParseCpuListTest, RangesSinglesAndMixes)
{
    EXPECT_EQ(parseCpuList("5"), (std::vector<int>{5}));
    EXPECT_EQ(parseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(parseCpuList("0-3,8,10-11"),
              (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
    // Sysfs lists arrive sorted, but the parser must not rely on it.
    EXPECT_EQ(parseCpuList("4,0-1"), (std::vector<int>{0, 1, 4}));
    EXPECT_EQ(parseCpuList("2,2,2"), (std::vector<int>{2}));
}

TEST(ParseCpuListTest, MalformedYieldsEmpty)
{
    EXPECT_TRUE(parseCpuList("").empty());
    EXPECT_TRUE(parseCpuList("banana").empty());
    EXPECT_TRUE(parseCpuList("3-1").empty());
    EXPECT_TRUE(parseCpuList("1,-2").empty());
    EXPECT_TRUE(parseCpuList("1;2").empty());
}

TEST(CpuTopologyTest, FlatFallbackShape)
{
    const CpuTopology t = CpuTopology::flat(4);
    EXPECT_FALSE(t.from_sysfs);
    EXPECT_EQ(t.cpuCount(), 4u);
    EXPECT_EQ(t.cpus, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(t.llcGroupCount(), 1u);
    EXPECT_EQ(t.llcGroupOf(3), 0);
    EXPECT_EQ(t.llcGroupOf(99), -1);
    // Zero never happens (hardware_concurrency can return 0); clamp.
    EXPECT_EQ(CpuTopology::flat(0).cpuCount(), 1u);
}

/** Writes a fake /sys/devices/system/cpu tree for detectFrom(). */
class SysfsFixture {
  public:
    SysfsFixture()
    {
        char tmpl[] = "/tmp/diablo_cpu_topo_XXXXXX";
        root_ = mkdtemp(tmpl);
        EXPECT_FALSE(root_.empty());
    }

    ~SysfsFixture()
    {
        if (!root_.empty()) {
            const std::string cmd = "rm -rf '" + root_ + "'";
            [[maybe_unused]] int rc = std::system(cmd.c_str());
        }
    }

    void
    addCpu(int id, const std::string &llc_shared,
           const std::string &online = "")
    {
        const std::string cpu = root_ + "/cpu" + std::to_string(id);
        mkdirs(cpu + "/cache/index0");
        mkdirs(cpu + "/cache/index2");
        // index0: an L1 Data cache private to this cpu — the parser
        // must pass over it in favour of the higher level below.
        put(cpu + "/cache/index0/level", "1\n");
        put(cpu + "/cache/index0/type", "Data\n");
        put(cpu + "/cache/index0/shared_cpu_list",
            std::to_string(id) + "\n");
        // index2: the unified LLC whose shared list keys the group.
        put(cpu + "/cache/index2/level", "3\n");
        put(cpu + "/cache/index2/type", "Unified\n");
        put(cpu + "/cache/index2/shared_cpu_list", llc_shared + "\n");
        if (!online.empty()) {
            put(cpu + "/online", online + "\n");
        }
    }

    const std::string &root() const { return root_; }

  private:
    static void
    mkdirs(const std::string &path)
    {
        std::string sofar;
        for (size_t i = 0; i <= path.size(); ++i) {
            if (i == path.size() || path[i] == '/') {
                if (!sofar.empty()) {
                    ::mkdir(sofar.c_str(), 0755);
                }
            }
            if (i < path.size()) {
                sofar.push_back(path[i]);
            }
        }
    }

    static void
    put(const std::string &path, const std::string &text)
    {
        std::ofstream f(path);
        f << text;
    }

    std::string root_;
};

TEST(CpuTopologyTest, DetectFromTwoLlcDomains)
{
    SysfsFixture fx;
    // A 4-CPU machine with two 2-wide LLC domains (think two CCXs).
    fx.addCpu(0, "0-1");
    fx.addCpu(1, "0-1");
    fx.addCpu(2, "2-3");
    fx.addCpu(3, "2-3");

    const CpuTopology t = CpuTopology::detectFrom(fx.root(), 1);
    EXPECT_TRUE(t.from_sysfs);
    EXPECT_EQ(t.cpus, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(t.llcGroupCount(), 2u);
    EXPECT_EQ(t.llcGroupOf(0), t.llcGroupOf(1));
    EXPECT_EQ(t.llcGroupOf(2), t.llcGroupOf(3));
    EXPECT_NE(t.llcGroupOf(0), t.llcGroupOf(2));
    // Group ids are dense and first-appearance ordered: deterministic.
    EXPECT_EQ(t.llcGroupOf(0), 0);
    EXPECT_EQ(t.llcGroupOf(2), 1);
}

TEST(CpuTopologyTest, DetectFromSkipsOfflineCpus)
{
    SysfsFixture fx;
    fx.addCpu(0, "0-2");
    fx.addCpu(1, "0-2", /*online=*/"0");
    fx.addCpu(2, "0-2", /*online=*/"1");

    const CpuTopology t = CpuTopology::detectFrom(fx.root(), 1);
    EXPECT_EQ(t.cpus, (std::vector<int>{0, 2}));
    EXPECT_EQ(t.llcGroupCount(), 1u);
}

TEST(CpuTopologyTest, DetectFromMissingTreeFallsBack)
{
    const CpuTopology t =
        CpuTopology::detectFrom("/nonexistent/diablo/cpu", 3);
    EXPECT_FALSE(t.from_sysfs);
    EXPECT_EQ(t.cpuCount(), 3u);
}

TEST(CpuTopologyTest, HostIsSaneAndCached)
{
    const CpuTopology &t = CpuTopology::host();
    EXPECT_GE(t.cpuCount(), 1u);
    EXPECT_EQ(t.cpus.size(), t.llc_of.size());
    EXPECT_GE(t.llcGroupCount(), 1u);
    // Same object each call (cached detection).
    EXPECT_EQ(&t, &CpuTopology::host());
}

TEST(CpuTopologyTest, PinSaveRestoreRoundTrip)
{
#ifdef __linux__
    const diablo::SavedAffinity home = diablo::saveCurrentThreadAffinity();
    ASSERT_TRUE(home.valid);
    const int cpu = CpuTopology::host().cpus.front();
    EXPECT_TRUE(diablo::pinCurrentThreadToCpu(cpu));
    // Restoring must widen the mask back; a second save sees validity.
    diablo::restoreCurrentThreadAffinity(home);
    const diablo::SavedAffinity again = diablo::saveCurrentThreadAffinity();
    EXPECT_TRUE(again.valid);
    EXPECT_EQ(again.mask, home.mask);
    // Pinning to an absurd cpu id fails without changing the mask.
    EXPECT_FALSE(diablo::pinCurrentThreadToCpu(-1));
#else
    GTEST_SKIP() << "affinity control is Linux-only";
#endif
}

} // namespace
