#include <gtest/gtest.h>

#include "core/units.hh"

namespace diablo {
namespace {

TEST(Bandwidth, Constructors)
{
    EXPECT_DOUBLE_EQ(Bandwidth::gbps(1).bitsPerSec(), 1e9);
    EXPECT_DOUBLE_EQ(Bandwidth::mbps(100).bitsPerSec(), 1e8);
    EXPECT_DOUBLE_EQ(Bandwidth::gbps(10).asGbps(), 10.0);
    EXPECT_DOUBLE_EQ(Bandwidth::gbps(2.5).bytesPerSec(), 2.5e9 / 8);
}

TEST(Bandwidth, TransferTime)
{
    // 1500 bytes at 1 Gbps = 12 us.
    EXPECT_EQ(Bandwidth::gbps(1).transferTime(1500), SimTime::us(12));
    // 64 bytes at 10 Gbps = 51.2 ns.
    EXPECT_EQ(Bandwidth::gbps(10).transferTime(64),
              SimTime::nanoseconds(51.2));
}

TEST(Bandwidth, PaperScaleSanity)
{
    // The paper: "transmitting a 64-byte packet on a 10 Gbps link takes
    // only ~50 ns".  With physical-layer overhead a minimum frame is
    // 84 bytes on the wire.
    SimTime t = Bandwidth::gbps(10).transferTime(eth::wireBytes(46));
    EXPECT_GE(t, SimTime::ns(50));
    EXPECT_LE(t, SimTime::ns(70));
}

TEST(Ethernet, WireBytes)
{
    // Minimum frame: 46B payload + 14 + 4 + 8 + 12 = 84 wire bytes.
    EXPECT_EQ(eth::wireBytes(0), 84u);
    EXPECT_EQ(eth::wireBytes(46), 84u);
    EXPECT_EQ(eth::wireBytes(47), 85u);
    // Full MTU frame: 1500 + 38 = 1538.
    EXPECT_EQ(eth::wireBytes(1500), 1538u);
}

TEST(Bandwidth, Scaling)
{
    Bandwidth b = Bandwidth::gbps(1) * 10.0;
    EXPECT_DOUBLE_EQ(b.asGbps(), 10.0);
    EXPECT_DOUBLE_EQ((b / 4.0).asGbps(), 2.5);
}

} // namespace
} // namespace diablo
