#include <gtest/gtest.h>

#include "core/time.hh"

namespace diablo {
namespace {

using namespace diablo::time_literals;

TEST(SimTime, UnitConstructors)
{
    EXPECT_EQ(SimTime::ns(1).toPs(), 1000);
    EXPECT_EQ(SimTime::us(1).toPs(), 1000000);
    EXPECT_EQ(SimTime::ms(1).toPs(), 1000000000LL);
    EXPECT_EQ(SimTime::sec(1).toPs(), 1000000000000LL);
}

TEST(SimTime, Literals)
{
    EXPECT_EQ(5_ns, SimTime::ns(5));
    EXPECT_EQ(3_us, SimTime::us(3));
    EXPECT_EQ(2_ms, SimTime::ms(2));
    EXPECT_EQ(1_sec, SimTime::sec(1));
    EXPECT_EQ(7_ps, SimTime::ps(7));
}

TEST(SimTime, Arithmetic)
{
    SimTime t = 1_us + 500_ns;
    EXPECT_EQ(t.toNs(), 1500);
    t -= 500_ns;
    EXPECT_EQ(t, 1_us);
    EXPECT_EQ((2 * t).toNs(), 2000);
    EXPECT_EQ((t * 3).toNs(), 3000);
    EXPECT_EQ((t / 4).toNs(), 250);
    EXPECT_EQ(t / 250_ns, 4);
    EXPECT_EQ((1500_ns % 1_us), 500_ns);
}

TEST(SimTime, Comparisons)
{
    EXPECT_LT(1_ns, 1_us);
    EXPECT_GT(1_ms, 999_us);
    EXPECT_LE(1_ms, 1000_us);
    EXPECT_EQ(1_sec, 1000_ms);
}

TEST(SimTime, FloatingConversions)
{
    EXPECT_DOUBLE_EQ(SimTime::us(250).asSeconds(), 250e-6);
    EXPECT_DOUBLE_EQ(SimTime::ns(1500).asMicros(), 1.5);
    EXPECT_EQ(SimTime::seconds(1.5e-6), SimTime::us(1) + SimTime::ns(500));
    EXPECT_EQ(SimTime::microseconds(2.5), SimTime::ns(2500));
    EXPECT_EQ(SimTime::nanoseconds(0.25), SimTime::ps(250));
}

TEST(SimTime, Scaled)
{
    EXPECT_EQ((1_us).scaled(2.5), SimTime::ns(2500));
    EXPECT_EQ((100_ns).scaled(0.1), 10_ns);
}

TEST(SimTime, StrRendering)
{
    EXPECT_EQ((0_ns).str(), "0s");
    EXPECT_EQ((5_ns).str(), "5ns");
    EXPECT_EQ((1500_ns).str(), "1500ns");
    EXPECT_EQ((2_us).str(), "2us");
    EXPECT_EQ((3_ms).str(), "3ms");
    EXPECT_EQ((4_sec).str(), "4s");
    EXPECT_EQ((1_ps).str(), "1ps");
}

TEST(SimTime, MaxIsSentinel)
{
    EXPECT_GT(SimTime::max(), 1000000_sec);
}

} // namespace
} // namespace diablo
