#include <gtest/gtest.h>

#include <cmath>

#include "core/random.hh"

namespace diablo {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsStableAndIndependent)
{
    Rng master(7);
    Rng a1 = master.fork("nic");
    Rng a2 = master.fork("nic");
    Rng b = master.fork("switch");
    EXPECT_EQ(a1.next(), a2.next());
    EXPECT_NE(Rng(7).fork("nic").seed(), b.seed());
    // Forking doesn't consume master state.
    Rng master2(7);
    master2.fork("x");
    EXPECT_EQ(master.next(), master2.next());
}

TEST(Rng, ForkById)
{
    Rng master(7);
    EXPECT_EQ(master.fork(uint64_t{3}).seed(),
              master.fork(uint64_t{3}).seed());
    EXPECT_NE(master.fork(uint64_t{3}).seed(),
              master.fork(uint64_t{4}).seed());
}

TEST(Rng, UniformRange)
{
    Rng r(123);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanApproximatelyHalf)
{
    Rng r(99);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += r.uniform();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.uniformInt(3, 7);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 7u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 7);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += r.exponential(250.0);
    }
    EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, NormalMoments)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double x = r.normal(10.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ParetoIsHeavyTailedAndBounded)
{
    Rng r(17);
    double mx = 0;
    for (int i = 0; i < 100000; ++i) {
        double x = r.pareto(100.0, 1.5);
        ASSERT_GE(x, 100.0);
        mx = std::max(mx, x);
    }
    // With 100k draws and alpha=1.5, the max should far exceed xm.
    EXPECT_GT(mx, 10000.0);
}

TEST(Rng, GeneralizedParetoShapeZeroIsExponential)
{
    Rng r(19);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += r.generalizedPareto(0.0, 100.0, 0.0);
    }
    EXPECT_NEAR(sum / n, 100.0, 2.5);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        hits += r.bernoulli(0.3);
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedChoice)
{
    Rng r(29);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        counts[r.weightedChoice(w)]++;
    }
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(ZipfSampler, RankZeroMostPopular)
{
    Rng r(31);
    ZipfSampler z(1000, 0.99);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; ++i) {
        counts[z.sample(r)]++;
    }
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[500]);
}

TEST(ZipfSampler, CoversDomain)
{
    Rng r(37);
    ZipfSampler z(4, 0.5);
    bool seen[4] = {false, false, false, false};
    for (int i = 0; i < 10000; ++i) {
        seen[z.sample(r)] = true;
    }
    for (bool s : seen) {
        EXPECT_TRUE(s);
    }
}

} // namespace
} // namespace diablo
