#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.hh"

namespace diablo {
namespace {

TEST(Counter, IncAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStats, Moments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.record(x);
    }
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, Percentiles)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i) {
        s.record(i);
    }
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, PercentileSingleSample)
{
    SampleSet s;
    s.record(42.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(99.9), 42.0);
}

TEST(SampleSet, PercentileEmpty)
{
    SampleSet s;
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(SampleSet, CdfMonotone)
{
    SampleSet s;
    for (double x : {5.0, 1.0, 3.0, 3.0, 2.0}) {
        s.record(x);
    }
    auto cdf = s.cdf();
    ASSERT_EQ(cdf.size(), 4u); // duplicate 3.0 collapsed
    double prev_x = -1, prev_c = 0;
    for (const auto &p : cdf) {
        EXPECT_GT(p.x, prev_x);
        EXPECT_GT(p.cum, prev_c);
        prev_x = p.x;
        prev_c = p.cum;
    }
    EXPECT_DOUBLE_EQ(cdf.back().cum, 1.0);
    // 3.0 covers samples 1,2,3,3 -> cum 0.8.
    EXPECT_DOUBLE_EQ(cdf[2].x, 3.0);
    EXPECT_DOUBLE_EQ(cdf[2].cum, 0.8);
}

TEST(SampleSet, TailCdf)
{
    SampleSet s;
    for (int i = 1; i <= 1000; ++i) {
        s.record(i);
    }
    auto tail = s.tailCdf(95.0);
    ASSERT_FALSE(tail.empty());
    EXPECT_GE(tail.front().cum, 0.95);
    EXPECT_DOUBLE_EQ(tail.back().cum, 1.0);
    EXPECT_GE(tail.front().x, 950.0);
}

TEST(SampleSet, LogPmfMassSumsToOne)
{
    SampleSet s;
    for (double x : {10.0, 20.0, 100.0, 5000.0, 30.0, 15.0}) {
        s.record(x);
    }
    auto pmf = s.logPmf(4);
    double total = 0;
    for (const auto &b : pmf) {
        EXPECT_LT(b.lo, b.hi);
        total += b.mass;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SampleSet, Merge)
{
    SampleSet a, b;
    a.record(1.0);
    b.record(3.0);
    b.record(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(LogHistogram, PercentileApproximation)
{
    LogHistogram h(1.0, 1e6, 8);
    // 1000 samples at 100, 10 at 10000.
    for (int i = 0; i < 1000; ++i) {
        h.record(100.0);
    }
    for (int i = 0; i < 10; ++i) {
        h.record(10000.0);
    }
    EXPECT_EQ(h.count(), 1010u);
    double p50 = h.percentile(50);
    EXPECT_GT(p50, 50.0);
    EXPECT_LT(p50, 200.0);
    double p999 = h.percentile(99.95);
    EXPECT_GT(p999, 5000.0);
    EXPECT_LT(p999, 20000.0);
}

} // namespace
} // namespace diablo
