#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.hh"

namespace diablo {
namespace {

TEST(Counter, IncAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStats, Moments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.record(x);
    }
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, Percentiles)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i) {
        s.record(i);
    }
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, PercentileSingleSample)
{
    SampleSet s;
    s.record(42.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(99.9), 42.0);
}

TEST(SampleSet, PercentileEmpty)
{
    SampleSet s;
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(SampleSet, CdfMonotone)
{
    SampleSet s;
    for (double x : {5.0, 1.0, 3.0, 3.0, 2.0}) {
        s.record(x);
    }
    auto cdf = s.cdf();
    ASSERT_EQ(cdf.size(), 4u); // duplicate 3.0 collapsed
    double prev_x = -1, prev_c = 0;
    for (const auto &p : cdf) {
        EXPECT_GT(p.x, prev_x);
        EXPECT_GT(p.cum, prev_c);
        prev_x = p.x;
        prev_c = p.cum;
    }
    EXPECT_DOUBLE_EQ(cdf.back().cum, 1.0);
    // 3.0 covers samples 1,2,3,3 -> cum 0.8.
    EXPECT_DOUBLE_EQ(cdf[2].x, 3.0);
    EXPECT_DOUBLE_EQ(cdf[2].cum, 0.8);
}

TEST(SampleSet, TailCdf)
{
    SampleSet s;
    for (int i = 1; i <= 1000; ++i) {
        s.record(i);
    }
    auto tail = s.tailCdf(95.0);
    ASSERT_FALSE(tail.empty());
    EXPECT_GE(tail.front().cum, 0.95);
    EXPECT_DOUBLE_EQ(tail.back().cum, 1.0);
    EXPECT_GE(tail.front().x, 950.0);
}

TEST(SampleSet, LogPmfMassSumsToOne)
{
    SampleSet s;
    for (double x : {10.0, 20.0, 100.0, 5000.0, 30.0, 15.0}) {
        s.record(x);
    }
    auto pmf = s.logPmf(4);
    double total = 0;
    for (const auto &b : pmf) {
        EXPECT_LT(b.lo, b.hi);
        total += b.mass;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SampleSet, Merge)
{
    SampleSet a, b;
    a.record(1.0);
    b.record(3.0);
    b.record(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(SampleSet, MergeKeepsSortedCacheValid)
{
    SampleSet a, b;
    for (double x : {5.0, 1.0, 9.0}) {
        a.record(x);
    }
    for (double x : {4.0, 2.0, 8.0}) {
        b.record(x);
    }
    // Query both so the sorted caches exist, then merge: the fast path
    // must keep the cache valid and the order statistics exact.
    EXPECT_DOUBLE_EQ(a.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(b.percentile(50), 4.0);
    EXPECT_TRUE(a.sortedCacheValid());
    EXPECT_TRUE(b.sortedCacheValid());
    a.merge(b);
    EXPECT_TRUE(a.sortedCacheValid());
    EXPECT_EQ(a.count(), 6u);
    EXPECT_DOUBLE_EQ(a.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(a.percentile(100), 9.0);
    EXPECT_DOUBLE_EQ(a.percentile(50), 4.5);

    // An un-queried right-hand side cannot use the fast path but must
    // still merge correctly.
    SampleSet c, d;
    c.record(1.0);
    (void)c.percentile(50);
    d.record(0.5);
    EXPECT_FALSE(d.sortedCacheValid());
    c.merge(d);
    EXPECT_DOUBLE_EQ(c.percentile(0), 0.5);
    EXPECT_EQ(c.count(), 2u);
}

TEST(SampleSet, SelfMergeDoublesSamples)
{
    SampleSet a;
    a.record(1.0);
    a.record(3.0);
    (void)a.percentile(50);
    a.merge(a);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.percentile(100), 3.0);
}

TEST(LogHistogram, PercentileApproximation)
{
    LogHistogram h(1.0, 1e6, 8);
    // 1000 samples at 100, 10 at 10000.
    for (int i = 0; i < 1000; ++i) {
        h.record(100.0);
    }
    for (int i = 0; i < 10; ++i) {
        h.record(10000.0);
    }
    EXPECT_EQ(h.count(), 1010u);
    double p50 = h.percentile(50);
    EXPECT_GT(p50, 50.0);
    EXPECT_LT(p50, 200.0);
    double p999 = h.percentile(99.95);
    EXPECT_GT(p999, 5000.0);
    EXPECT_LT(p999, 20000.0);
}

TEST(LogHistogram, UnderflowOverflowRankContract)
{
    LogHistogram h(10.0, 1000.0, 4);
    // 5 underflow, 10 in range at ~100, 5 overflow.
    for (int i = 0; i < 5; ++i) {
        h.record(1.0);
    }
    for (int i = 0; i < 10; ++i) {
        h.record(100.0);
    }
    for (int i = 0; i < 5; ++i) {
        h.record(1e6);
    }
    EXPECT_EQ(h.count(), 20u);
    EXPECT_EQ(h.underflowCount(), 5u);
    EXPECT_EQ(h.overflowCount(), 5u);

    // Ranks 1..5 are underflow: clamp to the lower edge.
    EXPECT_DOUBLE_EQ(h.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(25), 10.0);
    // Ranks 6..15 land in the ~100 bin (log-midpoint, so approximate).
    double p50 = h.percentile(50);
    EXPECT_GT(p50, 50.0);
    EXPECT_LT(p50, 200.0);
    // Ranks 16..20 are overflow: clamp to the histogram's upper edge.
    EXPECT_DOUBLE_EQ(h.percentile(99), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(QuantileSketch, PercentileWithinRelativeError)
{
    QuantileSketch s;
    for (int i = 1; i <= 10000; ++i) {
        s.record(static_cast<double>(i));
    }
    EXPECT_EQ(s.count(), 10000u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 10000.0);
    EXPECT_NEAR(s.mean(), 5000.5, 1e-9);
    const double err = s.relativeError();
    for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9}) {
        const double exact = std::ceil(p / 100.0 * 10000.0);
        EXPECT_NEAR(s.percentile(p), exact, exact * 2.0 * err + 1.0)
            << "p=" << p;
    }
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 10000.0);
}

TEST(QuantileSketch, MergeMatchesSingleSketch)
{
    QuantileSketch a, b, whole;
    for (int i = 0; i < 5000; ++i) {
        const double x = 0.5 + i * 3.25;
        whole.record(x);
        (i % 2 ? a : b).record(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_EQ(a.fingerprint(), whole.fingerprint());
    EXPECT_DOUBLE_EQ(a.percentile(99), whole.percentile(99));
}

TEST(QuantileSketch, FingerprintAssociationInvariant)
{
    // Equal multisets must fingerprint equally for any merge
    // association/commutation...
    QuantileSketch ab, ba, a, b;
    for (double x : {1.0, 2.0, 400.0, 1e7}) {
        a.record(x);
    }
    for (double x : {3.0, 0.001, 900.0}) {
        b.record(x);
    }
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.fingerprint(), ba.fingerprint());

    // ...while the chained fold digest is order-sensitive: a parallel
    // engine that folded partitions in a different order is caught.
    const uint64_t fa = a.fingerprint();
    const uint64_t fb = b.fingerprint();
    uint64_t chain_ab = QuantileSketch::chainFingerprint(0, fa);
    chain_ab = QuantileSketch::chainFingerprint(chain_ab, fb);
    uint64_t chain_ba = QuantileSketch::chainFingerprint(0, fb);
    chain_ba = QuantileSketch::chainFingerprint(chain_ba, fa);
    EXPECT_NE(chain_ab, chain_ba);
}

TEST(QuantileSketch, OutOfRangeClampsToObservedExtremes)
{
    QuantileSketch s;
    s.record(-5.0);              // underflow
    s.record(1.0);
    s.record(1e30);              // beyond the top octave: overflow
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), 1e30);
    EXPECT_DOUBLE_EQ(s.percentile(0), -5.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 1e30);
}

TEST(QuantileSketch, MemoryIsFixedAndLazy)
{
    QuantileSketch s;
    EXPECT_EQ(s.memoryBytes(), 0u); // no counters until first record
    s.record(1.0);
    const size_t bytes = s.memoryBytes();
    EXPECT_GT(bytes, 0u);
    EXPECT_LT(bytes, 32u * 1024u);
    for (int i = 0; i < 100000; ++i) {
        s.record(i * 0.7);
    }
    EXPECT_EQ(s.memoryBytes(), bytes); // independent of sample count
}

TEST(LatencyStat, RawModeBehavesLikeSampleSet)
{
    LatencyStat s;
    EXPECT_EQ(s.mode(), LatencyStat::Mode::Raw);
    for (double x : {4.0, 1.0, 9.0, 2.0}) {
        s.record(x);
    }
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
    EXPECT_EQ(s.raw().size(), 4u);          // inherited raw-mode view
    EXPECT_EQ(s.samples().count(), 4u);
    // Reference binding to the base class keeps working (harness code
    // passes LatencyStat to SampleSet-taking helpers).
    const SampleSet &base = s;
    EXPECT_EQ(base.count(), 4u);
}

TEST(LatencyStat, SketchModeDispatchAndMerge)
{
    LatencyStat a, b;
    a.enableSketch();
    b.enableSketch();
    for (int i = 1; i <= 1000; ++i) {
        (i % 2 ? a : b).record(static_cast<double>(i));
    }
    a.merge(b);
    EXPECT_TRUE(a.sketched());
    EXPECT_EQ(a.count(), 1000u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 1000.0);
    EXPECT_NEAR(a.percentile(50), 500.0, 500.0 * 0.05);
    EXPECT_EQ(a.sketch().count(), 1000u);

    // Same multiset recorded into one sketched stat: same fingerprint.
    LatencyStat whole;
    whole.enableSketch();
    for (int i = 1; i <= 1000; ++i) {
        whole.record(static_cast<double>(i));
    }
    EXPECT_EQ(a.fingerprint(), whole.fingerprint());
}

} // namespace
} // namespace diablo
