#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.hh"

namespace diablo {
namespace {

using namespace diablo::time_literals;

TEST(EventQueue, FiresInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30_ns, [&] { order.push_back(3); });
    sim.schedule(10_ns, [&] { order.push_back(1); });
    sim.schedule(20_ns, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30_ns);
}

TEST(EventQueue, FifoAtEqualTime)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule(5_ns, [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
    }
}

TEST(EventQueue, PriorityBreaksTies)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(5_ns, [&] { order.push_back(2); }, event_prio::kDefault);
    sim.schedule(5_ns, [&] { order.push_back(3); }, event_prio::kWakeup);
    sim.schedule(5_ns, [&] { order.push_back(1); }, event_prio::kTimer);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, Cancellation)
{
    Simulator sim;
    int fired = 0;
    EventId id = sim.schedule(10_ns, [&] { ++fired; });
    sim.schedule(5_ns, [&] { sim.cancel(id); });
    sim.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFireIsSafe)
{
    Simulator sim;
    int fired = 0;
    EventId id = sim.schedule(1_ns, [&] { ++fired; });
    sim.run();
    sim.cancel(id); // no effect, no crash
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelInvalidIdIsSafe)
{
    Simulator sim;
    sim.cancel(EventId{}); // default id is invalid
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100) {
            sim.schedule(1_ns, chain);
        }
    };
    sim.schedule(1_ns, chain);
    sim.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(sim.now(), 100_ns);
}

TEST(Simulator, RunUntilAdvancesClockToBound)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10_ns, [&] { ++fired; });
    sim.schedule(100_ns, [&] { ++fired; });
    sim.runUntil(50_ns);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 50_ns);
    sim.runUntil(100_ns);
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopHaltsRun)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1_ns, [&] { ++fired; sim.stop(); });
    sim.schedule(2_ns, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    // A second run resumes with the remaining events.
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAtAbsolute)
{
    Simulator sim;
    SimTime seen;
    sim.scheduleAt(42_ns, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 42_ns);
}

TEST(Simulator, NextEventTimeAndStep)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(5_ns, [&] { ++fired; });
    sim.schedule(9_ns, [&] { ++fired; });
    EXPECT_EQ(sim.nextEventTime(), 5_ns);
    sim.executeNext();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.nextEventTime(), 9_ns);
    sim.executeNext();
    EXPECT_TRUE(sim.idle());
    EXPECT_EQ(sim.nextEventTime(), SimTime::max());
}

TEST(Simulator, ExecutedEventCount)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i) {
        sim.schedule(SimTime::ns(i + 1), [] {});
    }
    sim.run();
    EXPECT_EQ(sim.executedEvents(), 7u);
    EXPECT_GE(sim.scheduledEvents(), 7u);
}

TEST(Simulator, CancelledEventsDontBlockNextTime)
{
    Simulator sim;
    EventId a = sim.schedule(1_ns, [] {});
    sim.schedule(5_ns, [] {});
    sim.cancel(a);
    EXPECT_EQ(sim.nextEventTime(), 5_ns);
}

} // namespace
} // namespace diablo
