#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.hh"

namespace diablo {
namespace {

using namespace diablo::time_literals;

TEST(EventQueue, FiresInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30_ns, [&] { order.push_back(3); });
    sim.schedule(10_ns, [&] { order.push_back(1); });
    sim.schedule(20_ns, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30_ns);
}

TEST(EventQueue, FifoAtEqualTime)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule(5_ns, [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
    }
}

TEST(EventQueue, PriorityBreaksTies)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(5_ns, [&] { order.push_back(2); }, event_prio::kDefault);
    sim.schedule(5_ns, [&] { order.push_back(3); }, event_prio::kWakeup);
    sim.schedule(5_ns, [&] { order.push_back(1); }, event_prio::kTimer);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, Cancellation)
{
    Simulator sim;
    int fired = 0;
    EventId id = sim.schedule(10_ns, [&] { ++fired; });
    sim.schedule(5_ns, [&] { sim.cancel(id); });
    sim.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFireIsSafe)
{
    Simulator sim;
    int fired = 0;
    EventId id = sim.schedule(1_ns, [&] { ++fired; });
    sim.run();
    sim.cancel(id); // no effect, no crash
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelInvalidIdIsSafe)
{
    Simulator sim;
    sim.cancel(EventId{}); // default id is invalid
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100) {
            sim.schedule(1_ns, chain);
        }
    };
    sim.schedule(1_ns, chain);
    sim.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(sim.now(), 100_ns);
}

TEST(Simulator, RunUntilAdvancesClockToBound)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10_ns, [&] { ++fired; });
    sim.schedule(100_ns, [&] { ++fired; });
    sim.runUntil(50_ns);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 50_ns);
    sim.runUntil(100_ns);
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopHaltsRun)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1_ns, [&] { ++fired; sim.stop(); });
    sim.schedule(2_ns, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    // A second run resumes with the remaining events.
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAtAbsolute)
{
    Simulator sim;
    SimTime seen;
    sim.scheduleAt(42_ns, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 42_ns);
}

TEST(Simulator, NextEventTimeAndStep)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(5_ns, [&] { ++fired; });
    sim.schedule(9_ns, [&] { ++fired; });
    EXPECT_EQ(sim.nextEventTime(), 5_ns);
    sim.executeNext();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.nextEventTime(), 9_ns);
    sim.executeNext();
    EXPECT_TRUE(sim.idle());
    EXPECT_EQ(sim.nextEventTime(), SimTime::max());
}

TEST(Simulator, ExecutedEventCount)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i) {
        sim.schedule(SimTime::ns(i + 1), [] {});
    }
    sim.run();
    EXPECT_EQ(sim.executedEvents(), 7u);
    EXPECT_GE(sim.scheduledEvents(), 7u);
}

TEST(Simulator, CancelledEventsDontBlockNextTime)
{
    Simulator sim;
    EventId a = sim.schedule(1_ns, [] {});
    sim.schedule(5_ns, [] {});
    sim.cancel(a);
    EXPECT_EQ(sim.nextEventTime(), 5_ns);
}

TEST(EventQueue, ScheduleCancelStress)
{
    // Interleaved schedule / cancel / cancel-after-fire churn across the
    // slot pool, the freelist, and the tombstoned heap: 12k events at
    // colliding timestamps, a third cancelled before the run, a fifth
    // cancelled from inside the run, stale ids re-cancelled afterwards.
    Simulator sim;
    constexpr int kEvents = 12000;

    struct Rec {
        SimTime when;
        int idx;
    };
    std::vector<Rec> fired;
    fired.reserve(kEvents);
    std::vector<EventId> ids(kEvents);
    std::vector<bool> cancelled(kEvents, false);

    // Deterministic LCG so the test is reproducible without <random>.
    uint64_t lcg = 0x2545F4914F6CDD1Dull;
    auto next = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<uint32_t>(lcg >> 33);
    };

    for (int i = 0; i < kEvents; ++i) {
        const SimTime when = SimTime::ns(next() % 499 + 1);
        ids[i] = sim.schedule(when, [&fired, &sim, i] {
            fired.push_back(Rec{sim.now(), i});
        });
    }
    for (int i = 0; i < kEvents; i += 3) {
        sim.cancel(ids[i]);
        cancelled[i] = true;
    }
    // Cancel another slice from inside the run, before any victim fires
    // (victims are all at >= 1 ns).
    sim.schedule(SimTime(), [&] {
        for (int i = 1; i < kEvents; i += 5) {
            if (!cancelled[i]) {
                sim.cancel(ids[i]);
                cancelled[i] = true;
            }
        }
    });
    // Cancel-after-fire from inside the run: by 600 ns every survivor
    // has fired, so these must all be inert no-ops.
    sim.schedule(600_ns, [&] {
        for (int i = 0; i < 100; ++i) {
            sim.cancel(ids[i]);
        }
    });
    sim.run();

    // Liveness: the queue drained completely.
    EXPECT_TRUE(sim.idle());

    // Exactly the non-cancelled events fired, each exactly once.
    size_t expected = 0;
    std::vector<int> seen(kEvents, 0);
    for (int i = 0; i < kEvents; ++i) {
        expected += cancelled[i] ? 0u : 1u;
    }
    ASSERT_EQ(fired.size(), expected);
    for (const Rec &r : fired) {
        ++seen[static_cast<size_t>(r.idx)];
        EXPECT_FALSE(cancelled[static_cast<size_t>(r.idx)]);
    }
    for (int i = 0; i < kEvents; ++i) {
        EXPECT_EQ(seen[static_cast<size_t>(i)], cancelled[i] ? 0 : 1);
    }

    // Ordering: non-decreasing time, FIFO (insertion index) at ties.
    for (size_t k = 1; k < fired.size(); ++k) {
        ASSERT_LE(fired[k - 1].when, fired[k].when);
        if (fired[k - 1].when == fired[k].when) {
            ASSERT_LT(fired[k - 1].idx, fired[k].idx);
        }
    }

    // Stale ids stay inert after the run, even en masse.
    for (int i = 0; i < kEvents; ++i) {
        sim.cancel(ids[i]);
    }
    sim.run(); // no-op
    EXPECT_EQ(fired.size(), expected);
}

} // namespace
} // namespace diablo
