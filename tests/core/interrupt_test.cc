/**
 * @file
 * Cooperative-interrupt flag tests, including one real signal
 * delivery through the installed handler.  Each test clears the
 * process-wide flag so ordering doesn't matter.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>

#include "core/interrupt.hh"

namespace diablo {
namespace core {
namespace {

class InterruptTest : public ::testing::Test {
  protected:
    void TearDown() override { clearInterrupt(); }
};

TEST_F(InterruptTest, StartsClear)
{
    EXPECT_FALSE(interruptRequested());
    EXPECT_EQ(interruptCause(), 0);
    EXPECT_STREQ(interruptCauseName(), "none");
}

TEST_F(InterruptTest, RequestSetsCauseFirstWins)
{
    requestInterrupt(kCauseWatchdogDeadline);
    EXPECT_TRUE(interruptRequested());
    EXPECT_EQ(interruptCause(), kCauseWatchdogDeadline);
    // A later cause must not overwrite the first one: the run
    // finalizes against whatever stopped it first.
    requestInterrupt(SIGTERM);
    EXPECT_EQ(interruptCause(), kCauseWatchdogDeadline);
    clearInterrupt();
    EXPECT_FALSE(interruptRequested());
}

TEST_F(InterruptTest, CauseNamesAreStable)
{
    requestInterrupt(SIGINT);
    EXPECT_STREQ(interruptCauseName(), "SIGINT");
    clearInterrupt();
    requestInterrupt(SIGTERM);
    EXPECT_STREQ(interruptCauseName(), "SIGTERM");
    clearInterrupt();
    requestInterrupt(kCauseWatchdogDeadline);
    EXPECT_STREQ(interruptCauseName(), "watchdog-deadline");
    clearInterrupt();
    requestInterrupt(kCauseWatchdogStall);
    EXPECT_STREQ(interruptCauseName(), "watchdog-stall");
}

TEST_F(InterruptTest, HandlerTurnsSigtermIntoAFlag)
{
    installInterruptHandlers();
    ASSERT_FALSE(interruptRequested());
    // First delivery must not kill the process — just set the flag.
    // (A second delivery re-raises with default disposition; not
    // exercised here for obvious reasons.)
    ASSERT_EQ(std::raise(SIGTERM), 0);
    EXPECT_TRUE(interruptRequested());
    EXPECT_EQ(interruptCause(), SIGTERM);
    EXPECT_STREQ(interruptCauseName(), "SIGTERM");
}

} // namespace
} // namespace core
} // namespace diablo
