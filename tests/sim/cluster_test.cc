#include <gtest/gtest.h>

#include "sim/cluster.hh"

namespace diablo {
namespace sim {
namespace {

using namespace diablo::time_literals;

ClusterParams
tinyCluster()
{
    ClusterParams p = ClusterParams::gige1us();
    p.topo.servers_per_rack = 4;
    p.topo.racks_per_array = 3;
    p.topo.num_arrays = 2;
    return p;
}

struct EchoProbe {
    long server_got = -1;
    long client_got = -1;
    SimTime rtt;
    bool done = false;
};

Task<>
probeServer(os::Kernel &k, EchoProbe &r)
{
    os::Thread &t = k.createThread("srv");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), 7);
    os::RecvedMessage m;
    r.server_got = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m);
    co_await k.sysSendTo(t, static_cast<int>(fd), m.from, m.from_port,
                         static_cast<uint64_t>(r.server_got), nullptr);
}

Task<>
probeClient(os::Kernel &k, net::NodeId dst, EchoProbe &r)
{
    os::Thread &t = k.createThread("cli");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    SimTime start = k.sim().now();
    co_await k.sysSendTo(t, static_cast<int>(fd), dst, 7, 200, nullptr);
    os::RecvedMessage m;
    r.client_got = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m);
    r.rtt = k.sim().now() - start;
    r.done = true;
}

SimTime
echoRtt(net::NodeId src, net::NodeId dst)
{
    Simulator sim;
    Cluster cluster(sim, tinyCluster());
    EchoProbe r;
    cluster.kernel(dst).spawnProcess(probeServer(cluster.kernel(dst), r));
    cluster.kernel(src).spawnProcess(probeClient(cluster.kernel(src), dst,
                                                 r));
    sim.run();
    EXPECT_TRUE(r.done);
    EXPECT_EQ(r.server_got, 200);
    EXPECT_EQ(r.client_got, 200);
    return r.rtt;
}

TEST(Cluster, EchoAcrossEveryHopClass)
{
    SimTime local = echoRtt(0, 2);    // same rack
    SimTime onehop = echoRtt(0, 8);   // same array, different rack
    SimTime twohop = echoRtt(0, 20);  // different array

    // Each added switch level adds latency.
    EXPECT_LT(local, onehop);
    EXPECT_LT(onehop, twohop);
    // 1 Gbps, 1 us per switch: everything finishes well under 1 ms.
    EXPECT_LT(twohop, 1_ms);
    EXPECT_GT(local, 10_us);
}

TEST(Cluster, EveryPairIsReachable)
{
    // Property check over the whole tiny fabric: an echo works between
    // every ordered pair of distinct nodes (sampled diagonally to keep
    // runtime reasonable while touching every node as both roles).
    Simulator sim;
    Cluster cluster(sim, tinyCluster());
    const uint32_t n = cluster.size();
    std::vector<EchoProbe> probes(n);
    for (uint32_t i = 0; i < n; ++i) {
        net::NodeId dst = (i + 7) % n; // crosses rack/array boundaries
        if (dst == i) {
            continue;
        }
        cluster.kernel(dst).spawnProcess(
            probeServer(cluster.kernel(dst), probes[i]));
    }
    // Servers all bind port 7 on their own node; one client per node.
    for (uint32_t i = 0; i < n; ++i) {
        net::NodeId dst = (i + 7) % n;
        if (dst == i) {
            continue;
        }
        cluster.kernel(i).spawnProcess(
            probeClient(cluster.kernel(i), dst, probes[i]));
    }
    sim.run();
    for (uint32_t i = 0; i < n; ++i) {
        if ((i + 7) % n == i) {
            continue;
        }
        EXPECT_TRUE(probes[i].done) << "pair " << i;
        EXPECT_EQ(probes[i].client_got, 200) << "pair " << i;
    }
}

TEST(Cluster, DeterministicAcrossConstructions)
{
    auto run = [] {
        Simulator sim;
        Cluster cluster(sim, tinyCluster());
        EchoProbe r;
        cluster.kernel(20).spawnProcess(
            probeServer(cluster.kernel(20), r));
        cluster.kernel(0).spawnProcess(
            probeClient(cluster.kernel(0), 20, r));
        sim.run();
        return std::pair(r.rtt.toPs(), sim.executedEvents());
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a, b);
}

TEST(Cluster, PaperScaleConstructionIsFeasible)
{
    // The paper's 500-node setup: 16 racks x 31 servers, one array.
    Simulator sim;
    ClusterParams p = ClusterParams::gige1us();
    p.topo.servers_per_rack = 31;
    p.topo.racks_per_array = 16;
    p.topo.num_arrays = 1;
    Cluster cluster(sim, p);
    EXPECT_EQ(cluster.size(), 496u);
    EXPECT_EQ(cluster.network().numRackSwitches(), 16u);
    EXPECT_EQ(cluster.network().numArraySwitches(), 1u);
}

TEST(Cluster, TengigPresetHasFasterFabric)
{
    ClusterParams g = ClusterParams::gige1us();
    ClusterParams x = ClusterParams::tengig100ns();
    EXPECT_DOUBLE_EQ(x.topo.rack_sw.port_bw.asGbps(), 10.0);
    EXPECT_EQ(x.topo.rack_sw.port_latency, SimTime::ns(100));
    EXPECT_DOUBLE_EQ(g.topo.rack_sw.port_bw.asGbps(), 1.0);
    // Both keep the shallow 4 KB buffers (paper: "same simulated switch
    // buffer configuration").
    EXPECT_EQ(g.topo.rack_sw.buffer_per_port_bytes, 4096u);
    EXPECT_EQ(x.topo.rack_sw.buffer_per_port_bytes, 4096u);
}

} // namespace
} // namespace sim
} // namespace diablo
