#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/mc_experiment.hh"
#include "sim/cluster.hh"

namespace diablo {
namespace sim {
namespace {

using namespace diablo::time_literals;

ClusterParams
fourRackParams(bool lazy)
{
    ClusterParams p = ClusterParams::gige1us();
    p.topo.servers_per_rack = 4;
    p.topo.racks_per_array = 4;
    p.topo.num_arrays = 1;
    p.lazy_servers = lazy;
    return p;
}

TEST(ClusterLazy, IdleNodesAreNotMaterialized)
{
    Simulator sim;
    Cluster cluster(sim, fourRackParams(/*lazy=*/true));
    EXPECT_EQ(cluster.size(), 16u);
    EXPECT_EQ(cluster.materializedServers(), 0u);

    // First app attach (any accessor touch) materializes exactly that
    // node; repeat touches are idempotent.
    cluster.kernel(3);
    EXPECT_EQ(cluster.materializedServers(), 1u);
    cluster.nic(3);
    cluster.uplink(3);
    EXPECT_EQ(cluster.materializedServers(), 1u);
    cluster.kernel(11);
    EXPECT_EQ(cluster.materializedServers(), 2u);

    std::vector<Cluster::ArenaStats> st = cluster.arenaStats();
    ASSERT_EQ(st.size(), 1u); // single-sim build: one arena
    EXPECT_EQ(st[0].nodes, 2u);
    EXPECT_GT(st[0].bytes_used, 0u);
    EXPECT_GE(st[0].bytes_reserved, st[0].bytes_used);
}

TEST(ClusterLazy, EagerBuildMaterializesEverything)
{
    Simulator sim;
    Cluster cluster(sim, fourRackParams(/*lazy=*/false));
    EXPECT_EQ(cluster.materializedServers(), cluster.size());
}

TEST(ClusterLazy, FirstDeliveredPacketMaterializes)
{
    // A packet addressed to a never-touched node must materialize it
    // from inside the ToR's forwarding path (the unattached-port hook)
    // and be delivered to the fresh NIC rather than dropped.
    Simulator sim;
    Cluster cluster(sim, fourRackParams(/*lazy=*/true));

    const net::NodeId src = 0, dst = 13; // cross-rack
    auto sender = [](os::Kernel &k, net::NodeId to) -> Task<> {
        os::Thread &t = k.createThread("tx");
        long fd = co_await k.sysSocket(t, net::Proto::Udp);
        co_await k.sysSendTo(t, static_cast<int>(fd), to, 9, 64, nullptr);
    };
    cluster.kernel(src).spawnProcess(sender(cluster.kernel(src), dst));
    EXPECT_EQ(cluster.materializedServers(), 1u);

    sim.run();

    EXPECT_EQ(cluster.materializedServers(), 2u);
    EXPECT_GT(cluster.nic(dst).rxPackets(), 0u);
}

/**
 * Deterministic digest of a memcached run's observable results:
 * app-level latency stats (as sketch fingerprints chained in client
 * fold order), protocol counters, and engine event counts.
 */
std::vector<uint64_t>
mcFingerprint(apps::McExperiment &exp, fame::PartitionSet &ps)
{
    const apps::McExperimentResult &r = exp.result();
    std::vector<uint64_t> fp;
    fp.push_back(r.requests_completed);
    fp.push_back(r.udp_timeouts);
    fp.push_back(r.udp_retries);
    fp.push_back(static_cast<uint64_t>(r.elapsed.toPs()));
    fp.push_back(r.latency_us.fingerprint());
    fp.push_back(r.first_request_us.fingerprint());
    for (int h = 0; h < 3; ++h) {
        fp.push_back(r.latency_us_by_hop[h].fingerprint());
    }
    sim::Cluster &c = exp.cluster();
    fp.push_back(c.totalTcpRetransmits());
    fp.push_back(c.totalUdpSocketDrops());
    fp.push_back(c.totalNicRxDrops());
    fp.push_back(c.network().totalSwitchDrops());
    fp.push_back(c.network().totalForwarded());
    // materializedServers() is deliberately NOT part of the digest:
    // it differs between lazy and eager by design, while everything
    // observable about the simulation must not.
    for (size_t i = 0; i < ps.size(); ++i) {
        fp.push_back(ps.partition(i).executedEvents());
    }
    return fp;
}

std::vector<uint64_t>
runShardedMc(bool lazy, bool parallel, bool sketch)
{
    apps::McExperimentParams mp;
    mp.cluster = fourRackParams(lazy);
    mp.num_servers = 4;
    mp.num_clients = 4; // leaves 8 idle nodes for the lazy diet
    mp.sketch_stats = sketch;
    mp.server.udp = true;
    mp.client.udp = true;
    mp.client.requests = 40;

    fame::PartitionSet ps(Cluster::partitionsRequired(mp.cluster));
    apps::McExperiment exp(ps, mp);
    exp.run(parallel);
    std::vector<uint64_t> fp = mcFingerprint(exp, ps);

    if (lazy) {
        // 4 servers + 4 clients active; the other 8 nodes never see a
        // request addressed to them, so they must stay unmaterialized.
        EXPECT_EQ(exp.cluster().materializedServers(), 8u);
    } else {
        EXPECT_EQ(exp.cluster().materializedServers(), 16u);
    }
    return fp;
}

TEST(ClusterLazy, LazyEagerSeqParAllBitIdentical)
{
    // The memory diet must be invisible in the results: lazy vs eager,
    // sequential vs parallel — every combination produces bit-identical
    // statistics (including the sketch fingerprints, which pin the
    // full latency distribution, not just scalar counters).
    std::vector<uint64_t> base =
        runShardedMc(/*lazy=*/true, /*parallel=*/false, /*sketch=*/true);
    EXPECT_EQ(base, runShardedMc(true, true, true));
    EXPECT_EQ(base, runShardedMc(false, false, true));
    EXPECT_EQ(base, runShardedMc(false, true, true));
}

TEST(ClusterLazy, ShardedArenasArePerRack)
{
    ClusterParams params = fourRackParams(/*lazy=*/true);
    fame::PartitionSet ps(Cluster::partitionsRequired(params));
    Cluster cluster(ps, params);

    std::vector<Cluster::ArenaStats> st = cluster.arenaStats();
    ASSERT_EQ(st.size(), 4u); // one arena per rack partition
    for (const Cluster::ArenaStats &a : st) {
        EXPECT_EQ(a.nodes, 0u);
    }

    cluster.kernel(0);  // rack 0
    cluster.kernel(1);  // rack 0
    cluster.kernel(15); // rack 3
    st = cluster.arenaStats();
    EXPECT_EQ(st[0].nodes, 2u);
    EXPECT_EQ(st[1].nodes, 0u);
    EXPECT_EQ(st[2].nodes, 0u);
    EXPECT_EQ(st[3].nodes, 1u);
}

TEST(ClusterLazy, CrossPartitionDeliveryMaterializesUnderParallelRun)
{
    // The delivery trigger must also work mid-run on the parallel
    // engine: the hook fires inside the destination rack's partition,
    // bump-allocating from that rack's own arena.
    for (bool parallel : {false, true}) {
        ClusterParams params = fourRackParams(/*lazy=*/true);
        fame::PartitionSet ps(Cluster::partitionsRequired(params));
        Cluster cluster(ps, params);

        const net::NodeId src = 0, dst = 13; // rack 0 -> rack 3
        auto sender = [](os::Kernel &k, net::NodeId to) -> Task<> {
            os::Thread &t = k.createThread("tx");
            long fd = co_await k.sysSocket(t, net::Proto::Udp);
            co_await k.sysSendTo(t, static_cast<int>(fd), to, 9, 64,
                                 nullptr);
        };
        cluster.kernel(src).spawnProcess(
            sender(cluster.kernel(src), dst));
        EXPECT_EQ(cluster.materializedServers(), 1u);

        if (parallel) {
            ps.runParallel(10_ms);
        } else {
            ps.runSequential(10_ms);
        }

        EXPECT_EQ(cluster.materializedServers(), 2u);
        EXPECT_GT(cluster.nic(dst).rxPackets(), 0u);
        std::vector<Cluster::ArenaStats> st = cluster.arenaStats();
        EXPECT_EQ(st[0].nodes, 1u);
        EXPECT_EQ(st[3].nodes, 1u);
    }
}

} // namespace
} // namespace sim
} // namespace diablo
