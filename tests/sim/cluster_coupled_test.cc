/**
 * @file
 * Process-coupling tests at the cluster layer: two complete copies of
 * a 4-rack incast model, coupled over an in-process transport pair
 * exactly as the multiprocess launcher couples engine processes, must
 * reproduce the sequential reference bit-for-bit under the launcher's
 * merge rules — owner-selected per-partition event counts, and pool /
 * protocol counters summed across the two copies (the ghost-packet
 * accounting makes the sums exact, not merely close).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "apps/incast.hh"
#include "fame/transport.hh"
#include "sim/cluster.hh"
#include "sim/fault.hh"

namespace diablo {
namespace sim {
namespace {

using namespace diablo::time_literals;

ClusterParams
fourRackParams()
{
    ClusterParams p = ClusterParams::gige1us();
    p.topo.servers_per_rack = 3;
    p.topo.racks_per_array = 4;
    p.topo.num_arrays = 1;
    return p;
}

uint64_t
doubleBits(double d)
{
    uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(d));
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

apps::IncastParams
incastParams()
{
    apps::IncastParams ip;
    ip.block_bytes = 32 * 1024;
    ip.iterations = 3;
    ip.warmup_iterations = 1;
    return ip;
}

std::unique_ptr<FaultController>
makeFaults(Cluster &cluster, const ClusterParams &params)
{
    FaultPlan plan(params.seed);
    plan.trunkDown(2_ms, /*rack=*/1, /*plane=*/0);
    plan.trunkBrownout(3_ms, /*rack=*/2, 0, /*loss=*/0.1, 2_us);
    plan.trunkUp(300_ms, 1, 0);
    plan.trunkRepair(300_ms, 2, 0);
    auto fc = std::make_unique<FaultController>(cluster, plan);
    fc->install();
    return fc;
}

/** One engine-side copy of the model (what each process builds). */
struct ModelCopy {
    explicit ModelCopy(bool with_faults)
        : params(fourRackParams()),
          ps(Cluster::partitionsRequired(params)), cluster(ps, params)
    {
        if (with_faults) {
            fc = makeFaults(cluster, params);
        }
        std::vector<net::NodeId> servers;
        for (net::NodeId n = 3; n < cluster.size(); ++n) {
            servers.push_back(n);
        }
        app = std::make_unique<apps::IncastApp>(cluster, incastParams(),
                                                /*client=*/0, servers);
        app->install();
    }

    ClusterParams params;
    fame::PartitionSet ps;
    Cluster cluster;
    std::unique_ptr<FaultController> fc;
    std::unique_ptr<apps::IncastApp> app;
};

/**
 * The merged view the launcher reports: app results and quanta from
 * the leader, per-partition event counts from each partition's owner,
 * pool ledgers and protocol counters summed across every copy.
 */
std::vector<uint64_t>
mergedFingerprint(std::vector<ModelCopy *> copies,
                  const std::vector<uint32_t> &owner)
{
    std::vector<uint64_t> fp;
    ModelCopy &leader = *copies[0];
    const apps::IncastResult &r = leader.app->result();
    EXPECT_TRUE(r.done);
    fp.push_back(r.total_bytes);
    fp.push_back(static_cast<uint64_t>(r.elapsed.toPs()));
    for (double s : r.iteration_us.raw()) {
        fp.push_back(doubleBits(s));
    }
    uint64_t retrans = 0, rtos = 0, udp_drops = 0, nic_drops = 0;
    uint64_t sw_drops = 0, forwarded = 0;
    for (ModelCopy *c : copies) {
        retrans += c->cluster.totalTcpRetransmits();
        rtos += c->cluster.totalTcpRtos();
        udp_drops += c->cluster.totalUdpSocketDrops();
        nic_drops += c->cluster.totalNicRxDrops();
        sw_drops += c->cluster.network().totalSwitchDrops();
        forwarded += c->cluster.network().totalForwarded();
    }
    fp.push_back(retrans);
    fp.push_back(rtos);
    fp.push_back(udp_drops);
    fp.push_back(nic_drops);
    fp.push_back(sw_drops);
    fp.push_back(forwarded);
    fp.push_back(leader.ps.quantaExecuted());
    for (size_t i = 0; i < leader.ps.size(); ++i) {
        fp.push_back(copies.size() == 1
                         ? leader.ps.partition(i).executedEvents()
                         : copies[owner[i]]
                               ->ps.partition(i)
                               .executedEvents());
    }
    for (size_t i = 0; i < leader.ps.size(); ++i) {
        uint64_t makes = 0, returns = 0;
        for (ModelCopy *c : copies) {
            makes += c->cluster.poolStats()[i].makes;
            returns += c->cluster.poolStats()[i].returns;
        }
        fp.push_back(makes);
        fp.push_back(returns);
    }
    return fp;
}

std::vector<uint64_t>
runSequentialReference(bool with_faults)
{
    ModelCopy m(with_faults);
    m.ps.runSequential(10_sec);
    return mergedFingerprint({&m}, {});
}

std::vector<uint64_t>
runProcessCoupled(bool with_faults)
{
    ModelCopy a(with_faults);
    ModelCopy b(with_faults);
    const std::vector<uint32_t> owner =
        fame::PartitionSet::lptAssign(a.ps.partitionWeights(), 2);
    EXPECT_EQ(owner,
              fame::PartitionSet::lptAssign(b.ps.partitionWeights(), 2));
    EXPECT_EQ(owner[0], 0u); // leader keeps the client rack

    auto pair = fame::makeInProcTransportPair();
    fame::PartitionSet::CoupledOptions oa;
    oa.self_rank = 0;
    oa.owner_of = owner;
    oa.peers = {{1u, pair.first.get()}};
    a.cluster.enableProcessCoupling(oa);

    fame::PartitionSet::CoupledOptions ob;
    ob.self_rank = 1;
    ob.owner_of = owner;
    ob.peers = {{0u, pair.second.get()}};
    b.cluster.enableProcessCoupling(ob);

    bool ok_b = false;
    std::thread peer([&] { ok_b = b.ps.runCoupled(10_sec); });
    const bool ok_a = a.ps.runCoupled(10_sec);
    peer.join();
    EXPECT_TRUE(ok_a);
    EXPECT_TRUE(ok_b);
    EXPECT_EQ(a.ps.quantaExecuted(), b.ps.quantaExecuted());
    // Real trunk traffic crossed the transport in both directions.
    EXPECT_GT(a.ps.coupledStats().msgs_sent, 0u);
    EXPECT_GT(b.ps.coupledStats().msgs_sent, 0u);
    return mergedFingerprint({&a, &b}, owner);
}

// The tentpole contract at cluster scope: a coupled pair of engine
// copies over a transport is indistinguishable — in the launcher's
// merged artifact view — from the one-process sequential run.
TEST(ClusterCoupled, MergedViewBitIdenticalToSequential)
{
    const std::vector<uint64_t> seq = runSequentialReference(false);
    const std::vector<uint64_t> mp = runProcessCoupled(false);
    EXPECT_EQ(seq, mp);
}

// Same invariant under the trunk fault plan: every copy installs the
// full plan, owned partitions execute their replicated events, and the
// summed drop/retransmit/pool ledgers must still match exactly.
TEST(ClusterCoupled, MergedViewBitIdenticalUnderFaultPlan)
{
    const std::vector<uint64_t> seq = runSequentialReference(true);
    const std::vector<uint64_t> mp = runProcessCoupled(true);
    EXPECT_EQ(seq, mp);
}

TEST(ClusterCoupledDeathTest, CouplingAnUnshardedClusterIsFatal)
{
    Simulator sim;
    ClusterParams p = fourRackParams();
    Cluster cluster(sim, p);
    fame::PartitionSet::CoupledOptions opts;
    opts.self_rank = 0;
    opts.owner_of = {0};
    EXPECT_DEATH(cluster.enableProcessCoupling(opts),
                 "not sharded over a PartitionSet");
}

} // namespace
} // namespace sim
} // namespace diablo
