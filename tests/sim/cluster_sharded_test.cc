#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/incast.hh"
#include "sim/cluster.hh"
#include "sim/fault.hh"

namespace diablo {
namespace sim {
namespace {

using namespace diablo::time_literals;

/**
 * Four racks, one array: the smallest topology with real cross-partition
 * traffic in both trunk directions plus an aggregation level that lives
 * on the switch partition (5 partitions total).
 */
ClusterParams
fourRackParams()
{
    ClusterParams p = ClusterParams::gige1us();
    p.topo.servers_per_rack = 3;
    p.topo.racks_per_array = 4;
    p.topo.num_arrays = 1;
    return p;
}

uint64_t
doubleBits(double d)
{
    uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(d));
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

/**
 * Every observable statistic of a sharded incast run, flattened into a
 * word vector so two runs can be compared for *bit* identity: app-level
 * results (bytes, elapsed, per-iteration latency samples), protocol
 * pathology counters (TCP retransmits/RTOs, NIC and switch drops), and
 * engine counters (quanta, executed events per partition).
 */
struct ShardedOutcome {
    std::vector<uint64_t> fingerprint;
    uint64_t tcp_retransmits = 0;
    uint64_t switch_drops = 0;
};

ShardedOutcome
runShardedIncast(bool parallel, size_t threads = 0,
                 bool with_faults = false)
{
    const ClusterParams params = fourRackParams();
    fame::PartitionSet ps(Cluster::partitionsRequired(params));
    ps.setParallelism(threads);
    Cluster cluster(ps, params);
    EXPECT_TRUE(cluster.sharded());
    EXPECT_EQ(cluster.partitionSet(), &ps);

    std::unique_ptr<FaultController> fc;
    if (with_faults) {
        FaultPlan plan(params.seed);
        plan.trunkDown(2_ms, /*rack=*/1, /*plane=*/0);
        plan.trunkBrownout(3_ms, /*rack=*/2, 0, /*loss=*/0.1, 2_us);
        plan.trunkUp(300_ms, 1, 0);
        plan.trunkRepair(300_ms, 2, 0);
        fc = std::make_unique<FaultController>(cluster, plan);
        fc->install();
    }

    // Client in rack 0; every server in racks 1..3 responds, so all
    // block traffic converges through the client ToR's shallow-buffer
    // downlink after crossing rack->switch->rack partition boundaries.
    apps::IncastParams ip;
    ip.block_bytes = 32 * 1024;
    ip.iterations = 3;
    ip.warmup_iterations = 1;
    std::vector<net::NodeId> servers;
    for (net::NodeId n = 3; n < cluster.size(); ++n) {
        servers.push_back(n);
    }
    apps::IncastApp app(cluster, ip, /*client=*/0, servers);
    app.install();

    if (parallel) {
        ps.runParallel(10_sec);
    } else {
        ps.runSequential(10_sec);
    }

    const apps::IncastResult &r = app.result();
    EXPECT_TRUE(r.done);
    EXPECT_EQ(r.total_bytes,
              uint64_t(ip.block_bytes) * servers.size() * ip.iterations);

    ShardedOutcome out;
    out.tcp_retransmits = cluster.totalTcpRetransmits();
    out.switch_drops = cluster.network().totalSwitchDrops();

    std::vector<uint64_t> &fp = out.fingerprint;
    fp.push_back(r.total_bytes);
    fp.push_back(static_cast<uint64_t>(r.elapsed.toPs()));
    for (double s : r.iteration_us.raw()) {
        fp.push_back(doubleBits(s));
    }
    fp.push_back(cluster.totalTcpRetransmits());
    fp.push_back(cluster.totalTcpRtos());
    fp.push_back(cluster.totalUdpSocketDrops());
    fp.push_back(cluster.totalNicRxDrops());
    fp.push_back(cluster.network().totalSwitchDrops());
    fp.push_back(cluster.network().totalForwarded());
    fp.push_back(ps.quantaExecuted());
    for (size_t i = 0; i < ps.size(); ++i) {
        fp.push_back(ps.partition(i).executedEvents());
    }
    // Packet-pool traffic is event-driven, so makes/returns per
    // partition must also be bit-identical across engines.  (The
    // recycle/heap split is wall-clock-dependent and deliberately
    // excluded.)
    for (const Cluster::PoolStats &p : cluster.poolStats()) {
        fp.push_back(p.makes);
        fp.push_back(p.returns);
    }
    return out;
}

TEST(ClusterSharded, PartitionsRequired)
{
    ClusterParams p = fourRackParams();
    EXPECT_EQ(Cluster::partitionsRequired(p), 5u); // 4 racks + switches

    p.topo.racks_per_array = 1;
    p.topo.num_arrays = 1;
    EXPECT_EQ(Cluster::partitionsRequired(p), 1u); // lone ToR, no trunks

    p.topo.racks_per_array = 2;
    p.topo.num_arrays = 3;
    EXPECT_EQ(Cluster::partitionsRequired(p), 7u); // 6 racks + switches
}

// The tentpole acceptance criterion: a >= 4-rack sharded cluster yields
// bit-identical aggregate statistics from the sequential reference and
// the pooled parallel engine — at every fusion width (1 = degenerate
// solo worker, 2 = partitions sharing workers, 5 = one worker per
// partition, 0 = hardware default) — under a workload with real TCP
// loss recovery (incast over 4 KB ToR buffers).
TEST(ClusterSharded, SequentialAndParallelAreBitIdentical)
{
    ShardedOutcome seq = runShardedIncast(false);
    for (size_t threads : {1u, 2u, 5u, 0u}) {
        ShardedOutcome par = runShardedIncast(true, threads);
        EXPECT_EQ(seq.fingerprint, par.fingerprint)
            << "threads=" << threads;
    }
}

// Same invariant with the datapath under fault stress: link-down
// drops, brownout losses and the recovery retransmit storm all route
// dead packets back to foreign pools, and the pool make/return
// ledgers must still be bit-identical between engines.
TEST(ClusterSharded, PoolLedgersBitIdenticalUnderFaultPlan)
{
    ShardedOutcome seq =
        runShardedIncast(false, 0, /*with_faults=*/true);
    for (size_t threads : {1u, 0u}) {
        ShardedOutcome par =
            runShardedIncast(true, threads, /*with_faults=*/true);
        EXPECT_EQ(seq.fingerprint, par.fingerprint)
            << "threads=" << threads;
    }
}

TEST(ClusterSharded, IncastActuallyStressesTheFabric)
{
    // Guard against the determinism test passing vacuously on an idle
    // network: 9 concurrent 32 KB responses into one 4 KB-buffered ToR
    // port must overflow it.
    ShardedOutcome out = runShardedIncast(false);
    EXPECT_GT(out.switch_drops, 0u);
    EXPECT_GT(out.tcp_retransmits, 0u);
}

TEST(ClusterSharded, CrossRackEchoMatchesSingleSimulator)
{
    // One packet in flight at a time: the sharded cluster must compute
    // exactly the same RTT as the single-simulator build (ChannelLink
    // delivery times equal plain Link delivery times).
    struct Echo {
        long got = -1;
        SimTime rtt;
        bool done = false;
    };
    auto server = [](os::Kernel &k, Echo &r) -> Task<> {
        os::Thread &t = k.createThread("srv");
        long fd = co_await k.sysSocket(t, net::Proto::Udp);
        co_await k.sysBind(t, static_cast<int>(fd), 7);
        os::RecvedMessage m;
        long got = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m);
        co_await k.sysSendTo(t, static_cast<int>(fd), m.from, m.from_port,
                             static_cast<uint64_t>(got), nullptr);
        (void)r;
    };
    auto client = [](os::Kernel &k, net::NodeId dst, Echo &r) -> Task<> {
        os::Thread &t = k.createThread("cli");
        long fd = co_await k.sysSocket(t, net::Proto::Udp);
        SimTime start = k.sim().now();
        co_await k.sysSendTo(t, static_cast<int>(fd), dst, 7, 300,
                             nullptr);
        os::RecvedMessage m;
        r.got = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m);
        r.rtt = k.sim().now() - start;
        r.done = true;
    };

    const ClusterParams params = fourRackParams();
    SimTime single_rtt;
    {
        Simulator sim;
        Cluster cluster(sim, params);
        Echo r;
        cluster.kernel(9).spawnProcess(server(cluster.kernel(9), r));
        cluster.kernel(0).spawnProcess(
            client(cluster.kernel(0), 9, r));
        sim.run();
        ASSERT_TRUE(r.done);
        single_rtt = r.rtt;
    }
    for (bool parallel : {false, true}) {
        fame::PartitionSet ps(Cluster::partitionsRequired(params));
        Cluster cluster(ps, params);
        Echo r;
        cluster.kernel(9).spawnProcess(server(cluster.kernel(9), r));
        cluster.kernel(0).spawnProcess(
            client(cluster.kernel(0), 9, r));
        if (parallel) {
            ps.runParallel(1_sec);
        } else {
            ps.runSequential(1_sec);
        }
        ASSERT_TRUE(r.done);
        EXPECT_EQ(r.got, 300);
        EXPECT_EQ(r.rtt, single_rtt)
            << (parallel ? "parallel" : "sequential");
    }
}

TEST(ClusterShardedDeathTest, WrongPartitionCountIsFatal)
{
    ClusterParams p = fourRackParams();
    EXPECT_DEATH(
        {
            fame::PartitionSet ps(2);
            Cluster cluster(ps, p);
        },
        "needs 5 partitions");
}

TEST(ClusterShardedDeathTest, SimAccessorOnShardedClusterIsFatal)
{
    ClusterParams p = fourRackParams();
    EXPECT_DEATH(
        {
            fame::PartitionSet ps(Cluster::partitionsRequired(p));
            Cluster cluster(ps, p);
            cluster.sim();
        },
        "sharded cluster has no single simulator");
}

} // namespace
} // namespace sim
} // namespace diablo
