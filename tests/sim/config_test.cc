#include <gtest/gtest.h>

#include "sim/cluster.hh"

namespace diablo {
namespace sim {
namespace {

TEST(ClusterConfig, ApplyConfigOverridesEveryLayer)
{
    Config cfg;
    cfg.set("topo.servers_per_rack", 8);
    cfg.set("topo.racks_per_array", 4);
    cfg.set("topo.num_arrays", 2);
    cfg.set("topo.rack.port_gbps", 10.0);
    cfg.set("topo.rack.buffer_policy", "shared_dynamic");
    cfg.set("cpu.freq_ghz", 2.0);
    cfg.set("cpu.cores", 2);
    cfg.set("kernel.version", "3.5.7");
    cfg.set("kernel.napi_budget", 32);
    cfg.set("tcp.mss", 536);
    cfg.set("tcp.min_rto_us", 100000.0);
    cfg.set("nic.zero_copy", false);
    cfg.set("seed", 777);

    ClusterParams p = ClusterParams::gige1us();
    p.applyConfig(cfg);

    EXPECT_EQ(p.topo.totalServers(), 64u);
    EXPECT_DOUBLE_EQ(p.topo.rack_sw.port_bw.asGbps(), 10.0);
    EXPECT_EQ(p.topo.rack_sw.buffer_policy,
              switchm::BufferPolicy::SharedDynamic);
    EXPECT_DOUBLE_EQ(p.cpu.freq_ghz, 2.0);
    EXPECT_EQ(p.cpu.cores, 2u);
    EXPECT_EQ(p.kernel_profile.name, "linux-3.5.7");
    EXPECT_EQ(p.kernel_profile.napi_budget, 32u);
    EXPECT_EQ(p.tcp.mss, 536u);
    EXPECT_EQ(p.tcp.min_rto, SimTime::ms(100));
    EXPECT_FALSE(p.nic.zero_copy);
    EXPECT_EQ(p.seed, 777u);
}

TEST(ClusterConfig, CommandLineStyleAssignments)
{
    // The flow a command-line front end would use: "key=value" tokens.
    Config cfg;
    EXPECT_TRUE(cfg.parseAssignment("topo.num_arrays=1"));
    EXPECT_TRUE(cfg.parseAssignment("topo.servers_per_rack=4"));
    EXPECT_TRUE(cfg.parseAssignment("topo.racks_per_array=2"));
    EXPECT_TRUE(cfg.parseAssignment("kernel.version=2.6.39.3"));

    ClusterParams p = ClusterParams::gige1us();
    p.applyConfig(cfg);
    Simulator sim;
    Cluster cluster(sim, p);
    EXPECT_EQ(cluster.size(), 8u);
    EXPECT_EQ(cluster.kernel(0).profile().name, "linux-2.6.39.3");
}

TEST(ClusterConfig, ProfileOverridesStackCosts)
{
    Config cfg;
    cfg.set("kernel.tcp_tx_per_packet_cycles", 12345);
    ClusterParams p = ClusterParams::gige1us();
    p.applyConfig(cfg);
    EXPECT_EQ(p.kernel_profile.tcp_tx_per_packet_cycles, 12345u);
}

TEST(ClusterConfig, SeedChangesRngStreams)
{
    ClusterParams a = ClusterParams::gige1us();
    a.topo.servers_per_rack = 2;
    a.topo.racks_per_array = 1;
    a.topo.num_arrays = 1;
    ClusterParams b = a;
    b.seed = a.seed + 1;

    Simulator s1, s2;
    Cluster c1(s1, a), c2(s2, b);
    EXPECT_NE(c1.rng().next(), c2.rng().next());
}

} // namespace
} // namespace sim
} // namespace diablo
