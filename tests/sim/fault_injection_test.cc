#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "apps/app_util.hh"
#include "apps/incast.hh"
#include "sim/cluster.hh"
#include "sim/fault.hh"

namespace diablo {
namespace sim {
namespace {

using namespace diablo::time_literals;

/** Four racks, one array, two ECMP planes: every fault class has a
 *  target and the trunks cross partition boundaries when sharded. */
ClusterParams
planedFourRackParams()
{
    ClusterParams p = ClusterParams::gige1us();
    p.topo.servers_per_rack = 3;
    p.topo.racks_per_array = 4;
    p.topo.num_arrays = 1;
    p.topo.uplink_planes = 2;
    return p;
}

uint64_t
doubleBits(double d)
{
    uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(d));
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

struct FaultedOutcome {
    std::vector<uint64_t> fingerprint;
    uint64_t reroutes = 0;
    uint64_t degrade_drops = 0;
    bool done = false;
};

/**
 * The cross-partition fault scenario: incast traffic into rack 0 while
 * the plan cuts the client rack's busiest uplink plane and browns out
 * both of rack 1's trunks, healing everything before the horizon.  The
 * entire faulted timeline must be bit-identical between sequential and
 * sharded-parallel execution.
 */
FaultedOutcome
runFaultedIncast(bool parallel, size_t threads = 0)
{
    const ClusterParams params = planedFourRackParams();
    fame::PartitionSet ps(Cluster::partitionsRequired(params));
    ps.setParallelism(threads);
    Cluster cluster(ps, params);

    apps::IncastParams ip;
    ip.block_bytes = 32 * 1024;
    ip.iterations = 3;
    ip.warmup_iterations = 1;
    std::vector<net::NodeId> servers;
    for (net::NodeId n = 3; n < cluster.size(); ++n) {
        servers.push_back(n);
    }
    apps::IncastApp app(cluster, ip, /*client=*/0, servers);
    app.install();

    // Cut the plane carrying the most server->client response flows so
    // the outage is guaranteed to strand traffic and force reroutes.
    topo::ClosNetwork &net = cluster.network();
    std::vector<uint32_t> per_plane(net.planes(), 0);
    for (net::NodeId s : servers) {
        ++per_plane[net.preferredPlane(s, 0)];
    }
    const uint32_t victim =
        per_plane[1] > per_plane[0] ? 1u : 0u;

    FaultPlan plan(params.seed);
    plan.trunkDown(2_ms, /*rack=*/0, victim);
    plan.trunkBrownout(3_ms, /*rack=*/1, 0, /*loss=*/0.2, 2_us);
    plan.trunkBrownout(3_ms, /*rack=*/1, 1, /*loss=*/0.2, 2_us);
    plan.trunkUp(SimTime::ms(400), 0, victim);
    plan.trunkRepair(SimTime::ms(400), 1, 0);
    plan.trunkRepair(SimTime::ms(400), 1, 1);
    FaultController fc(cluster, plan);
    fc.install();
    EXPECT_TRUE(fc.installed());

    if (parallel) {
        ps.runParallel(10_sec);
    } else {
        ps.runSequential(10_sec);
    }

    const apps::IncastResult &r = app.result();
    FaultedOutcome out;
    out.done = r.done;
    out.reroutes = net.rerouteCount();
    out.degrade_drops = net.totalLinkDegradeDrops();

    std::vector<uint64_t> &fp = out.fingerprint;
    fp.push_back(r.total_bytes);
    fp.push_back(static_cast<uint64_t>(r.elapsed.toPs()));
    for (double s : r.iteration_us.raw()) {
        fp.push_back(doubleBits(s));
    }
    fp.push_back(cluster.totalTcpRetransmits());
    fp.push_back(cluster.totalTcpRtos());
    fp.push_back(cluster.totalTcpAborts());
    fp.push_back(cluster.totalNicRxDrops());
    fp.push_back(net.totalSwitchDrops());
    fp.push_back(net.totalForwarded());
    fp.push_back(net.rerouteCount());
    fp.push_back(net.totalLinkDownDrops());
    fp.push_back(net.totalLinkDegradeDrops());
    fp.push_back(ps.quantaExecuted());
    for (size_t i = 0; i < ps.size(); ++i) {
        fp.push_back(ps.partition(i).executedEvents());
    }
    return out;
}

TEST(FaultInjection, FaultedRunIsBitIdenticalSequentialVsParallel)
{
    // The faulted timeline must survive every fusion width: degenerate
    // single-worker, shared workers, and the hardware default.
    FaultedOutcome seq = runFaultedIncast(false);
    EXPECT_TRUE(seq.done);
    for (size_t threads : {1u, 2u, 0u}) {
        FaultedOutcome par = runFaultedIncast(true, threads);
        EXPECT_TRUE(par.done) << "threads=" << threads;
        EXPECT_EQ(seq.fingerprint, par.fingerprint)
            << "threads=" << threads;
    }
}

TEST(FaultInjection, FaultsActuallyBite)
{
    // Guard against the determinism test passing vacuously: the trunk
    // cut must steer flows off their preferred plane and the brownout
    // must eat frames.
    FaultedOutcome out = runFaultedIncast(false);
    EXPECT_TRUE(out.done); // degraded, but the workload still completes
    EXPECT_GT(out.reroutes, 0u);
    EXPECT_GT(out.degrade_drops, 0u);
}

// ---------------------------------------------------------------------
// Server crash / reboot
// ---------------------------------------------------------------------

/** Two servers in one rack; node 0 streams a block to node 1. */
ClusterParams
pairParams()
{
    ClusterParams p = ClusterParams::gige1us();
    p.topo.servers_per_rack = 2;
    p.topo.racks_per_array = 1;
    p.topo.num_arrays = 1;
    return p;
}

struct SendResult {
    long rc = 1; // sentinel: never returned by sysSend
    SimTime finished_at;
    bool done = false;
};

Task<>
sinkServer(os::Kernel &k)
{
    os::Thread &t = k.createThread("sink");
    long lfd = co_await k.sysSocket(t, net::Proto::Tcp);
    co_await k.sysBind(t, static_cast<int>(lfd), 7);
    co_await k.sysListen(t, static_cast<int>(lfd), 4);
    long fd = co_await k.sysAccept(t, static_cast<int>(lfd), true);
    while (fd >= 0) {
        long n = co_await k.sysRecv(t, static_cast<int>(fd), 64 * 1024,
                                    nullptr);
        if (n <= 0) {
            co_return;
        }
    }
}

Task<>
bulkSender(Cluster *cluster, SendResult *r)
{
    os::Kernel &k = cluster->kernel(0);
    os::Thread &t = k.createThread("send");
    long fd = co_await apps::connectWithRetry(k, t, 1, 7);
    if (fd < 0) {
        ADD_FAILURE() << "connect failed: " << fd;
        co_return;
    }
    r->rc = co_await k.sysSend(t, static_cast<int>(fd), 512 * 1024,
                               nullptr);
    r->finished_at = k.sim().now();
    r->done = true;
}

TEST(FaultInjection, ServerCrashAbortsPeersInsteadOfHangingThem)
{
    ClusterParams params = pairParams();
    // Tight retry budget so the abort lands quickly.
    params.tcp.min_rto = 1_ms;
    params.tcp.init_rto = 2_ms;
    params.tcp.max_rto = 4_ms;
    params.tcp.max_retries = 4;

    Simulator sim;
    Cluster cluster(sim, params);
    SendResult r;
    cluster.kernel(1).spawnProcess(sinkServer(cluster.kernel(1)));
    cluster.kernel(0).spawnProcess(bulkSender(&cluster, &r));

    FaultPlan plan;
    plan.serverCrash(500_us, /*node=*/1); // mid-transfer, no reboot
    FaultController fc(cluster, plan);
    fc.install();
    sim.run();

    // The sender's retries exhaust against the silent host and the
    // connection aborts; the blocked send returns an error rather than
    // wedging the simulation.
    ASSERT_TRUE(r.done);
    EXPECT_EQ(r.rc, os::err::kTimedOut);
    EXPECT_EQ(cluster.totalTcpAborts(), 1u);
    EXPECT_TRUE(cluster.kernel(1).crashed());
    EXPECT_FALSE(cluster.uplink(1).isUp());
}

TEST(FaultInjection, RebootedServerResetsStaleConnections)
{
    ClusterParams params = pairParams();
    params.tcp.min_rto = 1_ms;
    params.tcp.init_rto = 2_ms;
    params.tcp.max_rto = 4_ms;
    params.tcp.max_retries = 200; // exhaustion would take ~a second

    Simulator sim;
    Cluster cluster(sim, params);
    SendResult r;
    cluster.kernel(1).spawnProcess(sinkServer(cluster.kernel(1)));
    cluster.kernel(0).spawnProcess(bulkSender(&cluster, &r));

    FaultPlan plan;
    plan.serverCrash(500_us, 1);
    plan.serverReboot(5_ms, 1);
    FaultController fc(cluster, plan);
    fc.install();
    sim.run();

    // The reboot wipes connection state, so the sender's next
    // retransmission draws an RST: the stale connection dies promptly
    // (connection-reset, not slow retry exhaustion).
    ASSERT_TRUE(r.done);
    EXPECT_EQ(r.rc, os::err::kConnReset);
    EXPECT_LT(r.finished_at, SimTime::ms(50));
    EXPECT_FALSE(cluster.kernel(1).crashed());
    EXPECT_TRUE(cluster.uplink(1).isUp());
    // Retransmissions that hit the host while it was dead were
    // discarded at the (dead) NIC ring, not processed.
    EXPECT_GT(cluster.totalCrashRxDiscards(), 0u);
}

// ---------------------------------------------------------------------
// FaultPlan parsing
// ---------------------------------------------------------------------

TEST(FaultPlan, FromConfigParsesEveryKind)
{
    Config cfg;
    cfg.set("fault.seed", 777);
    cfg.set("fault.0.kind", "trunk_down");
    cfg.set("fault.0.at_us", 1500.0);
    cfg.set("fault.0.rack", 2);
    cfg.set("fault.0.plane", 1);
    cfg.set("fault.1.kind", "trunk_brownout");
    cfg.set("fault.1.at_us", 2000.0);
    cfg.set("fault.1.rack", 1);
    cfg.set("fault.1.loss", 0.25);
    cfg.set("fault.1.extra_us", 3.0);
    cfg.set("fault.2.kind", "server_crash");
    cfg.set("fault.2.at_us", 2500.0);
    cfg.set("fault.2.node", 9);
    cfg.set("fault.3.kind", "switch_restart");
    cfg.set("fault.3.array", 1);
    cfg.set("fault.3.plane", 1);

    FaultPlan plan = FaultPlan::fromConfig(cfg);
    EXPECT_EQ(plan.seed(), 777u);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.events()[0].kind, FaultKind::TrunkDown);
    EXPECT_EQ(plan.events()[0].at, SimTime::us(1500));
    EXPECT_EQ(plan.events()[0].rack, 2u);
    EXPECT_EQ(plan.events()[0].plane, 1u);
    EXPECT_EQ(plan.events()[1].kind, FaultKind::TrunkBrownout);
    EXPECT_DOUBLE_EQ(plan.events()[1].loss_prob, 0.25);
    EXPECT_EQ(plan.events()[1].extra_latency, SimTime::us(3));
    EXPECT_EQ(plan.events()[2].kind, FaultKind::ServerCrash);
    EXPECT_EQ(plan.events()[2].node, 9u);
    EXPECT_EQ(plan.events()[3].kind, FaultKind::SwitchRestart);
    EXPECT_EQ(plan.events()[3].array, 1u);
    EXPECT_FALSE(plan.str().empty());
}

TEST(FaultPlan, FromConfigStopsAtFirstGap)
{
    Config cfg;
    cfg.set("fault.0.kind", "trunk_down");
    cfg.set("fault.2.kind", "trunk_up"); // unreachable past the gap
    FaultPlan plan = FaultPlan::fromConfig(cfg);
    EXPECT_EQ(plan.size(), 1u);
}

TEST(FaultPlan, FromFileMatchesFromConfig)
{
    const std::string path =
        ::testing::TempDir() + "fault_plan_test.conf";
    {
        std::ofstream out(path);
        out << "# a trunk outage with repair\n"
            << "fault.seed = 31337\n"
            << "\n"
            << "fault.0.kind = trunk_down   # cut it\n"
            << "fault.0.at_us = 100\n"
            << "fault.0.rack = 3\n"
            << "fault.0.plane = 1\n"
            << "fault.1.kind = trunk_up\n"
            << "fault.1.at_us = 900\n"
            << "fault.1.rack = 3\n"
            << "fault.1.plane = 1\n";
    }
    FaultPlan plan = FaultPlan::fromFile(path);
    std::remove(path.c_str());

    EXPECT_EQ(plan.seed(), 31337u);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.events()[0].kind, FaultKind::TrunkDown);
    EXPECT_EQ(plan.events()[0].at, SimTime::us(100));
    EXPECT_EQ(plan.events()[0].rack, 3u);
    EXPECT_EQ(plan.events()[1].kind, FaultKind::TrunkUp);
    EXPECT_EQ(plan.events()[1].at, SimTime::us(900));
}

TEST(FaultPlanDeathTest, UnknownKindIsFatal)
{
    Config cfg;
    cfg.set("fault.0.kind", "gamma_ray");
    EXPECT_DEATH(FaultPlan::fromConfig(cfg), "unknown fault kind");
}

// A --fault-plan file plus command-line fault.* keys used to silently
// drop the command-line events; merge() is the union the CLI now uses.
TEST(FaultPlan, MergeAppendsEventsAndOptionallyTakesSeed)
{
    Config file_cfg;
    file_cfg.set("fault.seed", 7);
    file_cfg.set("fault.0.kind", "trunk_down");
    file_cfg.set("fault.0.at_us", 1000);
    file_cfg.set("fault.0.rack", 0);
    FaultPlan plan = FaultPlan::fromConfig(file_cfg);

    Config cli_cfg;
    cli_cfg.set("fault.seed", 9);
    cli_cfg.set("fault.0.kind", "trunk_up");
    cli_cfg.set("fault.0.at_us", 2000);
    cli_cfg.set("fault.0.rack", 0);
    FaultPlan cli = FaultPlan::fromConfig(cli_cfg);

    FaultPlan merged = plan;
    merged.merge(cli, /*take_seed=*/false);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged.seed(), 7u); // file seed kept
    EXPECT_EQ(merged.events()[0].at, SimTime::us(1000));
    EXPECT_EQ(merged.events()[1].at, SimTime::us(2000));

    FaultPlan overridden = plan;
    overridden.merge(cli, /*take_seed=*/true);
    ASSERT_EQ(overridden.size(), 2u);
    EXPECT_EQ(overridden.seed(), 9u); // CLI fault.seed wins

    // Merging an empty plan is a no-op either way.
    FaultPlan lone = plan;
    lone.merge(FaultPlan(), /*take_seed=*/false);
    EXPECT_EQ(lone.size(), plan.size());
    EXPECT_EQ(lone.seed(), plan.seed());
}

TEST(FaultControllerDeathTest, ValidatesAgainstTopology)
{
    ClusterParams params = pairParams(); // single rack: no trunks
    Simulator sim;
    Cluster cluster(sim, params);

    FaultPlan trunk;
    trunk.trunkDown(1_ms, 0, 0);
    FaultController fc1(cluster, trunk);
    EXPECT_DEATH(fc1.install(), "single-rack topology");

    FaultPlan node;
    node.serverCrash(1_ms, /*node=*/99);
    FaultController fc2(cluster, node);
    EXPECT_DEATH(fc2.install(), "out of range");
}

} // namespace
} // namespace sim
} // namespace diablo
