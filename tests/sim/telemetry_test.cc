#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/incast.hh"
#include "apps/mc_experiment.hh"
#include "sim/cluster.hh"
#include "sim/telemetry.hh"

namespace diablo {
namespace sim {
namespace {

using namespace diablo::time_literals;

ClusterParams
fourRackParams()
{
    ClusterParams p = ClusterParams::gige1us();
    p.topo.servers_per_rack = 3;
    p.topo.racks_per_array = 4;
    p.topo.num_arrays = 1;
    return p;
}

uint64_t
doubleBits(double d)
{
    uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(d));
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

std::string
tmpStream(const char *tag)
{
    return testing::TempDir() + "diablo_telemetry_" + tag + ".jsonl";
}

/**
 * Windowed sharded incast — the same traffic pattern the seq≡par
 * bit-identity tests pin — optionally with a TelemetryProbe sampling
 * every 700 µs (deliberately not a divisor of the 250 ms window, so
 * driveTo really does subdivide windows at awkward grid points).
 * The fingerprint folds every engine-independent observable; quanta
 * are excluded because subdividing windows legitimately changes how
 * the engine chops time, which must never show up in results.
 */
std::vector<uint64_t>
runIncastWindowed(bool parallel, bool with_probe,
                  const std::string &stream_path,
                  uint64_t *samples_out = nullptr)
{
    const ClusterParams params = fourRackParams();
    fame::PartitionSet ps(Cluster::partitionsRequired(params));
    Cluster cluster(ps, params);

    apps::IncastParams ip;
    ip.block_bytes = 32 * 1024;
    ip.iterations = 3;
    ip.warmup_iterations = 1;
    std::vector<net::NodeId> servers;
    for (net::NodeId n = 3; n < cluster.size(); ++n) {
        servers.push_back(n);
    }
    apps::IncastApp app(cluster, ip, /*client=*/0, servers);
    app.install();

    std::unique_ptr<TelemetryProbe> probe;
    if (with_probe) {
        probe = std::make_unique<TelemetryProbe>(
            cluster, SimTime::us(700), stream_path);
        probe->setSampler([&app](TelemetryProbe::AppStats &s) {
            s.requests_completed = app.result().iteration_us.count();
        });
    }

    auto step = [&](SimTime t) {
        if (parallel) {
            ps.runParallel(t);
        } else {
            ps.runSequential(t);
        }
    };
    SimTime t;
    while (!app.result().done && t < 10_sec) {
        t = t + 250_ms;
        if (probe != nullptr) {
            probe->driveTo(t, step);
        } else {
            step(t);
        }
    }

    const apps::IncastResult &r = app.result();
    EXPECT_TRUE(r.done);
    if (samples_out != nullptr) {
        *samples_out = probe != nullptr ? probe->samplesWritten() : 0;
    }

    std::vector<uint64_t> fp;
    fp.push_back(r.total_bytes);
    fp.push_back(static_cast<uint64_t>(r.elapsed.toPs()));
    for (double s : r.iteration_us.raw()) {
        fp.push_back(doubleBits(s));
    }
    fp.push_back(cluster.totalTcpRetransmits());
    fp.push_back(cluster.totalTcpRtos());
    fp.push_back(cluster.totalUdpSocketDrops());
    fp.push_back(cluster.totalNicRxDrops());
    fp.push_back(cluster.network().totalSwitchDrops());
    fp.push_back(cluster.network().totalForwarded());
    for (size_t i = 0; i < ps.size(); ++i) {
        fp.push_back(ps.partition(i).executedEvents());
    }
    for (const Cluster::PoolStats &p : cluster.poolStats()) {
        fp.push_back(p.makes);
        fp.push_back(p.returns);
    }
    return fp;
}

// The headline contract: enabling the probe changes *nothing* in the
// simulated outcome — on the sequential reference engine...
TEST(Telemetry, ProbeDoesNotPerturbSequentialEngine)
{
    const std::string path = tmpStream("seq");
    uint64_t samples = 0;
    std::vector<uint64_t> off =
        runIncastWindowed(false, false, path);
    std::vector<uint64_t> on =
        runIncastWindowed(false, true, path, &samples);
    EXPECT_EQ(off, on);
    EXPECT_GT(samples, 0u);
    std::remove(path.c_str());
}

// ...and on the fused parallel engine, where samples are only taken at
// window boundaries with no worker running.
TEST(Telemetry, ProbeDoesNotPerturbParallelEngine)
{
    const std::string path = tmpStream("par");
    uint64_t samples = 0;
    std::vector<uint64_t> off = runIncastWindowed(true, false, path);
    std::vector<uint64_t> on =
        runIncastWindowed(true, true, path, &samples);
    EXPECT_EQ(off, on);
    EXPECT_GT(samples, 0u);
    std::remove(path.c_str());
}

// Both engines with the probe attached still agree with each other,
// and write the same number of samples (the stream is sim-time-paced,
// so its length is itself deterministic).
TEST(Telemetry, SequentialAndParallelAgreeWithProbeAttached)
{
    const std::string seq_path = tmpStream("seq2");
    const std::string par_path = tmpStream("par2");
    uint64_t seq_samples = 0, par_samples = 0;
    std::vector<uint64_t> seq =
        runIncastWindowed(false, true, seq_path, &seq_samples);
    std::vector<uint64_t> par =
        runIncastWindowed(true, true, par_path, &par_samples);
    EXPECT_EQ(seq, par);
    EXPECT_EQ(seq_samples, par_samples);
    std::remove(seq_path.c_str());
    std::remove(par_path.c_str());
}

TEST(Telemetry, StreamIsOneJsonObjectPerSample)
{
    const std::string path = tmpStream("shape");
    uint64_t samples = 0;
    runIncastWindowed(false, true, path, &samples);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    uint64_t lines = 0;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"t_us\":"), std::string::npos);
        EXPECT_NE(line.find("\"requests_completed\":"),
                  std::string::npos);
        EXPECT_NE(line.find("\"pool_makes\":"), std::string::npos);
        ++lines;
    }
    EXPECT_EQ(lines, samples);
    std::remove(path.c_str());
}

// Single-engine runs sample via a self-rescheduling event instead of
// window subdivision; the memcached harness's results must still be
// bit-identical with the probe installed or absent.
TEST(Telemetry, ProbeDoesNotPerturbSingleEngineMemcached)
{
    auto run = [](bool with_probe, const std::string &path,
                  uint64_t *samples) {
        apps::McExperimentParams p;
        p.cluster = ClusterParams::gige1us();
        p.cluster.topo.servers_per_rack = 3;
        p.cluster.topo.racks_per_array = 2;
        p.cluster.topo.num_arrays = 1;
        p.num_servers = 2;
        p.client.requests = 5;
        Simulator sim;
        apps::McExperiment exp(sim, p);
        std::unique_ptr<TelemetryProbe> probe;
        if (with_probe) {
            probe = std::make_unique<TelemetryProbe>(
                exp.cluster(), SimTime::ms(1), path);
            probe->setSampler([&exp](TelemetryProbe::AppStats &s) {
                s.requests_completed =
                    exp.liveStats().requests_completed;
            });
            exp.attachTelemetry(probe.get());
        }
        exp.run(false);
        if (samples != nullptr) {
            *samples = probe != nullptr ? probe->samplesWritten() : 0;
        }
        const apps::McExperimentResult &r = exp.result();
        std::vector<uint64_t> fp;
        fp.push_back(r.requests_completed);
        fp.push_back(static_cast<uint64_t>(r.elapsed.toPs()));
        fp.push_back(r.latency_us.fingerprint());
        for (int h = 0; h < 3; ++h) {
            fp.push_back(r.latency_us_by_hop[h].fingerprint());
        }
        fp.push_back(r.udp_retries);
        fp.push_back(r.udp_timeouts);
        return fp;
    };

    const std::string path = tmpStream("mc");
    uint64_t samples = 0;
    std::vector<uint64_t> off = run(false, path, nullptr);
    std::vector<uint64_t> on = run(true, path, &samples);
    EXPECT_EQ(off, on);
    EXPECT_GT(samples, 0u);
    std::remove(path.c_str());
}

TEST(TelemetryDeathTest, NonPositivePeriodIsFatal)
{
    EXPECT_DEATH(
        {
            ClusterParams p = ClusterParams::gige1us();
            p.topo.servers_per_rack = 2;
            p.topo.racks_per_array = 1;
            p.topo.num_arrays = 1;
            Simulator sim;
            Cluster cluster(sim, p);
            TelemetryProbe probe(cluster, SimTime(), "/dev/null");
        },
        "period must be positive");
}

} // namespace
} // namespace sim
} // namespace diablo
