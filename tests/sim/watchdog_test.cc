/**
 * @file
 * Watchdog tripwire tests.  Everything runs with hard_exit=false and
 * millisecond-scale windows; each test clears the process-wide
 * interrupt flag the trip sets, so tests stay order-independent.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/interrupt.hh"
#include "sim/watchdog.hh"

namespace diablo {
namespace sim {
namespace {

using namespace std::chrono_literals;

Watchdog::Params
fastParams()
{
    Watchdog::Params p;
    p.poll_s = 0.005;
    p.grace_s = 0.0;
    p.hard_exit = false;
    return p;
}

/** Spin until pred() or the (generous) timeout; return pred(). */
template <typename Pred>
bool
eventually(Pred pred, std::chrono::milliseconds limit = 2000ms)
{
    const auto end = std::chrono::steady_clock::now() + limit;
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= end) {
            return false;
        }
        std::this_thread::sleep_for(1ms);
    }
    return true;
}

class WatchdogTest : public ::testing::Test {
  protected:
    void TearDown() override { core::clearInterrupt(); }
};

TEST_F(WatchdogTest, DisabledParamsNeverTrip)
{
    Watchdog::Params p = fastParams();
    EXPECT_FALSE(p.enabled());
    bool diagnosed = false;
    Watchdog wd(p, [&](const char *) { diagnosed = true; });
    wd.arm();
    std::this_thread::sleep_for(30ms);
    wd.disarm();
    EXPECT_FALSE(wd.tripped());
    EXPECT_FALSE(diagnosed);
    EXPECT_FALSE(core::interruptRequested());
}

TEST_F(WatchdogTest, DeadlineTripsAndRequestsInterrupt)
{
    Watchdog::Params p = fastParams();
    p.deadline_s = 0.02;
    std::string reason;
    Watchdog wd(p, [&](const char *r) { reason = r; });
    wd.arm();
    ASSERT_TRUE(eventually([&] { return wd.tripped(); }));
    wd.disarm();
    EXPECT_EQ(reason, "deadline");
    EXPECT_STREQ(wd.reason(), "deadline");
    EXPECT_TRUE(core::interruptRequested());
    EXPECT_EQ(core::interruptCause(), core::kCauseWatchdogDeadline);
}

TEST_F(WatchdogTest, StallTripsWhenProgressFreezes)
{
    Watchdog::Params p = fastParams();
    p.stall_s = 0.03;
    Watchdog wd(p, [](const char *) {});
    wd.arm();
    // Feed progress for a while: no trip as long as the counter moves.
    const auto feed_until = std::chrono::steady_clock::now() + 100ms;
    uint64_t counter = 0;
    while (std::chrono::steady_clock::now() < feed_until) {
        wd.noteProgress(++counter);
        std::this_thread::sleep_for(2ms);
        ASSERT_FALSE(wd.tripped()) << "tripped while progressing";
    }
    // Freeze the counter: the stall tripwire must fire.
    ASSERT_TRUE(eventually([&] { return wd.tripped(); }));
    wd.disarm();
    EXPECT_STREQ(wd.reason(), "stall");
    EXPECT_EQ(core::interruptCause(), core::kCauseWatchdogStall);
}

TEST_F(WatchdogTest, DisarmBeforeTripSuppressesEverything)
{
    Watchdog::Params p = fastParams();
    p.deadline_s = 0.05;
    bool diagnosed = false;
    Watchdog wd(p, [&](const char *) { diagnosed = true; });
    wd.arm();
    wd.disarm(); // well before the 50 ms deadline
    std::this_thread::sleep_for(80ms);
    EXPECT_FALSE(wd.tripped());
    EXPECT_FALSE(diagnosed);
    EXPECT_FALSE(core::interruptRequested());
    wd.disarm(); // double disarm is safe
}

TEST_F(WatchdogTest, DestructorDisarms)
{
    Watchdog::Params p = fastParams();
    p.deadline_s = 0.05;
    {
        Watchdog wd(p, [](const char *) {});
        wd.arm();
    } // destructor joins the thread; must not trip afterwards
    std::this_thread::sleep_for(80ms);
    EXPECT_FALSE(core::interruptRequested());
}

} // namespace
} // namespace sim
} // namespace diablo
