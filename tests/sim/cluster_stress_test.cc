#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/incast.hh"
#include "core/random.hh"
#include "sim/cluster.hh"
#include "sim/fault.hh"

namespace diablo {
namespace sim {
namespace {

using namespace diablo::time_literals;

/**
 * Randomized-topology stress: sample cluster shapes (rack count, rack
 * size, trunk propagation), bursty incast traffic, and an optional
 * mid-run trunk outage, then require the sequential reference and the
 * fused parallel engine at several worker caps to produce bit-identical
 * fingerprints.  This is the adversarial counterpart of the fixed-shape
 * determinism tests: fusion assignment, barrier scheduling, and the
 * incremental skip path all depend on shape and load, so sweeping them
 * randomly hunts for interleaving-dependent divergence the curated
 * shapes might never hit.  The generator is seeded — failures replay.
 */
struct StressTrial {
    uint32_t racks;
    uint32_t servers_per_rack;
    SimTime trunk_prop;
    uint32_t block_kb;
    uint32_t iterations;
    bool faults;
    SimTime fault_at;
};

uint64_t
doubleBits(double d)
{
    uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(d));
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

std::vector<uint64_t>
runTrial(const StressTrial &t, bool parallel, size_t threads)
{
    ClusterParams params = ClusterParams::gige1us();
    params.topo.servers_per_rack = t.servers_per_rack;
    params.topo.racks_per_array = t.racks;
    params.topo.num_arrays = 1;
    params.topo.trunk_link_prop = t.trunk_prop;

    fame::PartitionSet ps(Cluster::partitionsRequired(params));
    ps.setParallelism(threads);
    Cluster cluster(ps, params);

    // Incast from every server outside the client's rack — the bursty
    // all-to-one shape that drives both trunk directions hard.
    apps::IncastParams ip;
    ip.block_bytes = t.block_kb * 1024;
    ip.iterations = t.iterations;
    ip.warmup_iterations = 1;
    std::vector<net::NodeId> servers;
    for (net::NodeId n = t.servers_per_rack; n < cluster.size(); ++n) {
        servers.push_back(n);
    }
    apps::IncastApp app(cluster, ip, /*client=*/0, servers);
    app.install();

    FaultController fc(cluster,
                       t.faults
                           ? FaultPlan(params.seed)
                                 .trunkDown(t.fault_at, /*rack=*/0, 0)
                                 .trunkUp(t.fault_at + SimTime::ms(300),
                                          0, 0)
                           : FaultPlan());
    if (t.faults) {
        fc.install();
    }

    if (parallel) {
        ps.runParallel(10_sec);
    } else {
        ps.runSequential(10_sec);
    }

    const apps::IncastResult &r = app.result();
    EXPECT_TRUE(r.done);

    std::vector<uint64_t> fp;
    fp.push_back(r.total_bytes);
    fp.push_back(static_cast<uint64_t>(r.elapsed.toPs()));
    for (double s : r.iteration_us.raw()) {
        fp.push_back(doubleBits(s));
    }
    fp.push_back(cluster.totalTcpRetransmits());
    fp.push_back(cluster.totalTcpRtos());
    fp.push_back(cluster.totalNicRxDrops());
    fp.push_back(cluster.network().totalSwitchDrops());
    fp.push_back(cluster.network().totalForwarded());
    fp.push_back(cluster.network().rerouteCount());
    fp.push_back(ps.quantaExecuted());
    for (size_t i = 0; i < ps.size(); ++i) {
        fp.push_back(ps.partition(i).executedEvents());
    }
    return fp;
}

TEST(ClusterStress, RandomTopologiesSeqParIdenticalAcrossFusionWidths)
{
    Rng rng(0xC10D0);
    for (int trial = 0; trial < 3; ++trial) {
        StressTrial t;
        t.racks = static_cast<uint32_t>(rng.uniformInt(2, 4));
        t.servers_per_rack =
            static_cast<uint32_t>(rng.uniformInt(2, 4));
        t.trunk_prop = SimTime::ns(
            static_cast<int64_t>(rng.uniformInt(300, 2000)));
        t.block_kb = static_cast<uint32_t>(rng.uniformInt(8, 32));
        t.iterations = static_cast<uint32_t>(rng.uniformInt(2, 3));
        t.faults = rng.uniformInt(0, 1) != 0;
        t.fault_at =
            SimTime::ms(static_cast<int64_t>(rng.uniformInt(1, 5)));

        SCOPED_TRACE(testing::Message()
                     << "trial " << trial << ": racks=" << t.racks
                     << " spr=" << t.servers_per_rack
                     << " trunk=" << t.trunk_prop.str()
                     << " block=" << t.block_kb << "KB"
                     << " faults=" << t.faults);

        const auto seq = runTrial(t, false, 1);
        ASSERT_FALSE(seq.empty());
        // 1 = degenerate fusion, 2 = racks sharing workers, 0 = the
        // hardware default (one worker per partition on big hosts).
        for (size_t threads : {1u, 2u, 0u}) {
            const auto par = runTrial(t, true, threads);
            EXPECT_EQ(seq, par) << "threads=" << threads;
        }
    }
}

} // namespace
} // namespace sim
} // namespace diablo
