#include <gtest/gtest.h>

#include "nic/nic_model.hh"
#include "os/node_test_util.hh"

namespace diablo {
namespace nic {
namespace {

using namespace diablo::time_literals;

net::PacketPtr
smallPacket()
{
    auto p = net::makePacket();
    p->flow.proto = net::Proto::Udp;
    p->payload_bytes = 100;
    return p;
}

TEST(NicModel, RxRingHoldsAndDequeues)
{
    Simulator sim;
    NicParams params;
    NicModel nic(sim, "n", params);

    sim.schedule(0_ns, [&] { nic.receive(smallPacket()); });
    sim.run(); // DMA latency elapses
    EXPECT_EQ(nic.rxPending(), 1u);
    auto p = nic.rxDequeue();
    ASSERT_TRUE(p);
    EXPECT_EQ(nic.rxPending(), 0u);
    EXPECT_FALSE(nic.rxDequeue());
}

TEST(NicModel, RxRingOverflowDrops)
{
    Simulator sim;
    NicParams params;
    params.rx_ring_entries = 4;
    NicModel nic(sim, "n", params);

    sim.schedule(0_ns, [&] {
        for (int i = 0; i < 10; ++i) {
            nic.receive(smallPacket());
        }
    });
    sim.run();
    EXPECT_EQ(nic.rxPending(), 4u);
    EXPECT_EQ(nic.rxRingDrops(), 6u);
}

TEST(NicModel, TxRingOverflowIsACountedDrop)
{
    // A descriptor-ring-full transmit is dropped and counted, exactly
    // like the rx side (and like real 8254x hardware under a stalled
    // driver) — it must not take the simulation down.
    struct NullSink : net::PacketSink {
        void receive(net::PacketPtr) override {}
    } sink;
    Simulator sim;
    NicParams params;
    params.tx_ring_entries = 4;
    NicModel nic(sim, "n", params);
    net::Link link(sim, "l", Bandwidth::gbps(1), 0_ns);
    link.connectTo(sink);
    nic.attachTxLink(link);
    // One burst inside a single event: the first frame occupies the
    // serializer, the next four fill the ring, the last two overflow.
    sim.schedule(0_ns, [&] {
        for (int i = 0; i < 7; ++i) {
            nic.txEnqueue(smallPacket());
        }
        EXPECT_TRUE(nic.txRingFull());
    });
    sim.run();
    EXPECT_EQ(nic.txRingDrops(), 2u);
    EXPECT_EQ(nic.txPackets(), 5u);
}

TEST(NicModel, DmaLatencyDelaysVisibility)
{
    Simulator sim;
    NicParams params;
    params.dma_latency = 2_us;
    NicModel nic(sim, "n", params);

    sim.schedule(0_ns, [&] { nic.receive(smallPacket()); });
    sim.runUntil(1_us);
    EXPECT_EQ(nic.rxPending(), 0u); // still in flight over DMA
    sim.runUntil(3_us);
    EXPECT_EQ(nic.rxPending(), 1u);
}

TEST(NicModel, InterruptMitigationCoalesces)
{
    // With a 100 us ITR, a burst of packets raises far fewer interrupts
    // than packets.
    os::test::TwoNodeHarness base; // to borrow a kernel for callbacks
    Simulator &sim = base.sim;

    NicParams params;
    params.rx_itr = 100_us;
    NicModel nic(sim, "n", params);
    nic.attachKernel(base.a.kernel); // interrupts go somewhere harmless

    sim.schedule(0_ns, [&] {
        for (int i = 0; i < 50; ++i) {
            sim.schedule(SimTime::us(i), [&] {
                nic.receive(smallPacket());
            });
        }
    });
    sim.run();
    // 50 packets over 50 us with a 100 us throttle: 1-2 interrupts.
    EXPECT_LE(nic.interruptsRaised(), 2u);
    EXPECT_EQ(nic.rxPackets(), 50u);
}

TEST(NicModel, NoThrottleMeansInterruptPerQuietPacket)
{
    os::test::TwoNodeHarness base;
    Simulator &sim = base.sim;
    NicParams params; // rx_itr = 0
    NicModel nic(sim, "n", params);
    nic.attachKernel(base.a.kernel);

    // Well-separated packets: each gets its own interrupt (NAPI will
    // mask only while the kernel is actively polling).
    for (int i = 0; i < 5; ++i) {
        sim.schedule(SimTime::ms(i + 1), [&] {
            nic.receive(smallPacket());
        });
    }
    sim.run();
    EXPECT_GE(nic.interruptsRaised(), 5u);
}

TEST(NicParams, FromConfig)
{
    Config cfg;
    cfg.set("nic.tx_ring_entries", 64);
    cfg.set("nic.zero_copy", false);
    cfg.set("nic.rx_itr_us", 12.5);
    NicParams p = NicParams::fromConfig(cfg, "nic.");
    EXPECT_EQ(p.tx_ring_entries, 64u);
    EXPECT_FALSE(p.zero_copy);
    EXPECT_EQ(p.rx_itr, SimTime::nanoseconds(12500));
}

TEST(NicModel, ZeroCopyLowersSendCpuCost)
{
    using os::test::TwoNodeHarness;
    // Zero-copy affects the TCP scatter/gather send path: compare the
    // sender's CPU busy time for an identical bulk transfer.
    auto tcpBusy = [](bool zc) {
        NicParams np;
        np.zero_copy = zc;
        TwoNodeHarness h({}, os::KernelProfile::linux2639(), np);
        auto sink = [](os::Kernel &k) -> Task<> {
            os::Thread &t = k.createThread("sink");
            long lfd = co_await k.sysSocket(t, net::Proto::Tcp);
            co_await k.sysBind(t, static_cast<int>(lfd), 7);
            co_await k.sysListen(t, static_cast<int>(lfd), 4);
            long fd = co_await k.sysAccept(t, static_cast<int>(lfd),
                                           true);
            while (true) {
                long n = co_await k.sysRecv(t, static_cast<int>(fd),
                                            1 << 20, nullptr);
                if (n <= 0) {
                    co_return;
                }
            }
        };
        auto src = [](os::Kernel &k) -> Task<> {
            os::Thread &t = k.createThread("src");
            long fd = co_await k.sysSocket(t, net::Proto::Tcp);
            co_await k.sysConnect(t, static_cast<int>(fd), 2, 7);
            co_await k.sysSend(t, static_cast<int>(fd), 400000, nullptr);
            co_await k.sysClose(t, static_cast<int>(fd));
        };
        h.b.kernel.spawnProcess(sink(h.b.kernel));
        h.a.kernel.spawnProcess(src(h.a.kernel));
        h.sim.run();
        return h.a.kernel.cpu().totalBusyTime();
    };
    SimTime with_zc = tcpBusy(true);
    SimTime without_zc = tcpBusy(false);
    EXPECT_LT(with_zc, without_zc);
}

} // namespace
} // namespace nic
} // namespace diablo
