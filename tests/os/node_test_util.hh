#ifndef DIABLO_TESTS_OS_NODE_TEST_UTIL_HH_
#define DIABLO_TESTS_OS_NODE_TEST_UTIL_HH_

/**
 * @file
 * Two simulated servers wired NIC-to-NIC (no switch): the minimal
 * full-stack harness for exercising syscalls, TCP/UDP, and the NIC.
 */

#include <memory>

#include "core/simulator.hh"
#include "net/link.hh"
#include "nic/nic_model.hh"
#include "os/kernel.hh"

namespace diablo {
namespace os {
namespace test {

/** One server: kernel + NIC + outbound link. */
struct TestNode {
    TestNode(Simulator &sim, net::NodeId id, const CpuParams &cpu,
             const KernelProfile &prof, const nic::NicParams &nicp,
             Bandwidth bw, SimTime prop)
        : kernel(sim, id, cpu, prof,
                 [](net::NodeId) { return net::SourceRoute{}; }),
          nic(sim, "nic" + std::to_string(id), nicp),
          tx_link(std::make_unique<net::Link>(
              sim, "wire" + std::to_string(id), bw, prop))
    {
        nic.attachKernel(kernel);
        nic.attachTxLink(*tx_link);
    }

    Kernel kernel;
    nic::NicModel nic;
    std::unique_ptr<net::Link> tx_link;
};

/** Two nodes with a full-duplex wire between them. */
struct TwoNodeHarness {
    explicit TwoNodeHarness(const CpuParams &cpu = {},
                            const KernelProfile &prof =
                                KernelProfile::linux2639(),
                            const nic::NicParams &nicp = {},
                            Bandwidth bw = Bandwidth::gbps(1),
                            SimTime prop = SimTime::us(1))
        : a(sim, 1, cpu, prof, nicp, bw, prop),
          b(sim, 2, cpu, prof, nicp, bw, prop)
    {
        a.tx_link->connectTo(b.nic);
        b.tx_link->connectTo(a.nic);
    }

    Simulator sim;
    TestNode a;
    TestNode b;
};

} // namespace test
} // namespace os
} // namespace diablo

#endif // DIABLO_TESTS_OS_NODE_TEST_UTIL_HH_
