#include <gtest/gtest.h>

#include "net/fault_injection.hh"
#include "os/node_test_util.hh"

namespace diablo {
namespace os {
namespace {

using namespace diablo::time_literals;

/** Two nodes with fault-injection sinks on both directions. */
struct LossyHarness {
    LossyHarness()
        : a(sim, 1, {}, KernelProfile::linux2639(), {},
            Bandwidth::gbps(1), SimTime::us(1)),
          b(sim, 2, {}, KernelProfile::linux2639(), {},
            Bandwidth::gbps(1), SimTime::us(1)),
          to_b(b.nic), to_a(a.nic)
    {
        a.tx_link->connectTo(to_b);
        b.tx_link->connectTo(to_a);
    }

    Simulator sim;
    test::TestNode a;
    test::TestNode b;
    net::LossySink to_b; ///< a -> b direction
    net::LossySink to_a; ///< b -> a direction
};

struct Result {
    uint64_t rx_bytes = 0;
    bool server_done = false;
    bool client_done = false;
    SimTime client_finished;
    SimTime server_finished;
};

Task<>
sinkServer(Kernel &k, Result &r)
{
    Thread &t = k.createThread("server");
    long lfd = co_await k.sysSocket(t, net::Proto::Tcp);
    co_await k.sysBind(t, static_cast<int>(lfd), 5001);
    co_await k.sysListen(t, static_cast<int>(lfd), 8);
    long fd = co_await k.sysAccept(t, static_cast<int>(lfd), true);
    while (true) {
        long n = co_await k.sysRecv(t, static_cast<int>(fd), 1 << 20,
                                    nullptr);
        if (n <= 0) {
            break;
        }
        r.rx_bytes += static_cast<uint64_t>(n);
    }
    r.server_done = true;
    r.server_finished = k.sim().now();
}

Task<>
bulkClient(Kernel &k, uint64_t bytes, Result &r)
{
    Thread &t = k.createThread("client");
    long fd = co_await k.sysSocket(t, net::Proto::Tcp);
    long rc = co_await k.sysConnect(t, static_cast<int>(fd), 2, 5001);
    EXPECT_EQ(rc, 0);
    co_await k.sysSend(t, static_cast<int>(fd), bytes, nullptr);
    co_await k.sysClose(t, static_cast<int>(fd));
    r.client_done = true;
    r.client_finished = k.sim().now();
}

/** Drop the first a->b TCP *data* segment whose seq is @p seq. */
void
dropDataSegmentOnce(net::LossySink &sink, uint64_t seq)
{
    auto seen = std::make_shared<bool>(false);
    sink.dropIf([seen, seq](const net::Packet &p) {
        if (*seen || p.payload_bytes == 0 || p.tcp.seq != seq) {
            return false;
        }
        *seen = true;
        return true;
    });
}

TEST(TcpLoss, MidStreamLossRecoversByFastRetransmit)
{
    LossyHarness h;
    Result r;
    // 100 KB transfer; drop the segment at stream offset 10 x 1448.
    dropDataSegmentOnce(h.to_b, 10 * 1448);
    h.b.kernel.spawnProcess(sinkServer(h.b.kernel, r));
    h.a.kernel.spawnProcess(bulkClient(h.a.kernel, 100000, r));
    h.sim.run();

    EXPECT_EQ(r.rx_bytes, 100000u);
    EXPECT_EQ(h.to_b.dropped(), 1u);
    EXPECT_EQ(h.a.kernel.stats().tcp_retransmits, 1u);
    // Fast retransmit, not a 200 ms timeout.
    EXPECT_EQ(h.a.kernel.stats().tcp_rtos, 0u);
    EXPECT_LT(r.client_finished, 50_ms);
}

TEST(TcpLoss, TailLossNeedsTheRtoTimer)
{
    LossyHarness h;
    Result r;
    // 20 KB transfer = 14 segments; drop the last (seq 13 x 1448).
    dropDataSegmentOnce(h.to_b, 13 * 1448);
    h.b.kernel.spawnProcess(sinkServer(h.b.kernel, r));
    h.a.kernel.spawnProcess(bulkClient(h.a.kernel, 20000, r));
    h.sim.run();

    EXPECT_EQ(r.rx_bytes, 20000u);
    EXPECT_GE(h.a.kernel.stats().tcp_rtos, 1u);
    // The receiver got the tail only after the 200 ms minimum RTO.
    EXPECT_GT(r.server_finished, 200_ms);
    EXPECT_LT(r.server_finished, 450_ms);
}

TEST(TcpLoss, SynLossCostsTheInitialRto)
{
    LossyHarness h;
    Result r;
    h.to_b.dropArrivals({0}); // the SYN is the first a->b packet
    h.b.kernel.spawnProcess(sinkServer(h.b.kernel, r));
    h.a.kernel.spawnProcess(bulkClient(h.a.kernel, 1000, r));
    h.sim.run();

    EXPECT_TRUE(r.client_done);
    EXPECT_EQ(r.rx_bytes, 1000u);
    // RFC 6298 initial RTO is 1 s (tick-quantized upward).
    EXPECT_GT(r.server_finished, 1_sec);
    EXPECT_LT(r.server_finished, 1300_ms);
}

TEST(TcpLoss, PureAckLossIsAbsorbedByCumulativeAcks)
{
    LossyHarness h;
    Result r;
    // Drop several early pure ACKs from the receiver.
    auto count = std::make_shared<int>(0);
    h.to_a.dropIf([count](const net::Packet &p) {
        if (p.payload_bytes == 0 &&
            p.tcp.has(net::tcp_flags::kAck) &&
            !p.tcp.has(net::tcp_flags::kSyn) && *count < 3) {
            ++*count;
            return true;
        }
        return false;
    });
    h.b.kernel.spawnProcess(sinkServer(h.b.kernel, r));
    h.a.kernel.spawnProcess(bulkClient(h.a.kernel, 200000, r));
    h.sim.run();

    EXPECT_EQ(r.rx_bytes, 200000u);
    // Later cumulative ACKs cover the lost ones: no retransmission.
    EXPECT_EQ(h.a.kernel.stats().tcp_retransmits, 0u);
    EXPECT_LT(r.client_finished, 50_ms);
}

TEST(TcpLoss, RandomLossStillDeliversEverythingExactlyOnce)
{
    for (uint64_t seed : {11u, 22u, 33u}) {
        LossyHarness h;
        Result r;
        h.to_b.dropRandomly(0.02, seed);
        h.to_a.dropRandomly(0.02, seed + 1);
        h.b.kernel.spawnProcess(sinkServer(h.b.kernel, r));
        h.a.kernel.spawnProcess(bulkClient(h.a.kernel, 500000, r));
        h.sim.run();

        EXPECT_TRUE(r.server_done) << "seed " << seed;
        EXPECT_EQ(r.rx_bytes, 500000u) << "seed " << seed;
        EXPECT_GT(h.to_b.dropped() + h.to_a.dropped(), 0u);
    }
}

TEST(TcpLoss, HeavyLossEventuallyCompletes)
{
    LossyHarness h;
    Result r;
    h.to_b.dropRandomly(0.2, 7);
    h.b.kernel.spawnProcess(sinkServer(h.b.kernel, r));
    h.a.kernel.spawnProcess(bulkClient(h.a.kernel, 50000, r));
    h.sim.run();

    EXPECT_TRUE(r.server_done);
    EXPECT_EQ(r.rx_bytes, 50000u);
    EXPECT_GT(h.a.kernel.stats().tcp_retransmits, 0u);
}

TEST(TcpLoss, LossScheduleIsDeterministic)
{
    auto run = [] {
        LossyHarness h;
        Result r;
        h.to_b.dropRandomly(0.05, 99);
        h.b.kernel.spawnProcess(sinkServer(h.b.kernel, r));
        h.a.kernel.spawnProcess(bulkClient(h.a.kernel, 300000, r));
        h.sim.run();
        return std::tuple(r.client_finished.toPs(), h.to_b.dropped(),
                          h.a.kernel.stats().tcp_retransmits);
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace os
} // namespace diablo
