#include <gtest/gtest.h>

#include "os/node_test_util.hh"

namespace diablo {
namespace os {
namespace {

using namespace diablo::time_literals;

TEST(KernelTimers, QuantizedUpToTheJiffyGrid)
{
    test::TwoNodeHarness h;
    Kernel &k = h.a.kernel;
    const SimTime tick = k.profile().tickPeriod(); // 4 ms at HZ=250

    std::vector<SimTime> fired;
    h.sim.schedule(0_ns, [&] {
        k.addTimer(1_ms, [&] { fired.push_back(h.sim.now()); });
        k.addTimer(1500_us, [&] { fired.push_back(h.sim.now()); });
        k.addTimer(tick + 1_us, [&] { fired.push_back(h.sim.now()); });
    });
    h.sim.run();

    ASSERT_EQ(fired.size(), 3u);
    // Never early...
    EXPECT_GE(fired[0], 1_ms);
    EXPECT_GE(fired[1], 1500_us);
    // ...and both short timers land on the same jiffy edge.
    EXPECT_EQ(fired[0], fired[1]);
    // Quantization error is bounded by one tick.
    EXPECT_LE(fired[0] - 1_ms, tick);
    EXPECT_LE(fired[2] - (tick + 1_us), tick);
}

TEST(KernelTimers, PerNodePhasesDiffer)
{
    // The jiffy grids of two servers must not be aligned (RTO storms
    // would otherwise synchronize fleet-wide).
    test::TwoNodeHarness h;
    SimTime fa, fb;
    h.sim.schedule(0_ns, [&] {
        h.a.kernel.addTimer(1_ms, [&] { fa = h.sim.now(); });
        h.b.kernel.addTimer(1_ms, [&] { fb = h.sim.now(); });
    });
    h.sim.run();
    EXPECT_NE(fa, fb);
}

TEST(KernelTimers, CancelPreventsFiring)
{
    test::TwoNodeHarness h;
    int fired = 0;
    h.sim.schedule(0_ns, [&] {
        EventId id = h.a.kernel.addTimer(1_ms, [&] { ++fired; });
        h.a.kernel.cancelTimer(id);
    });
    h.sim.run();
    EXPECT_EQ(fired, 0);
}

Task<>
sendTwo(Kernel &k, net::NodeId dst)
{
    Thread &t = k.createThread("s2");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysSendTo(t, static_cast<int>(fd), dst, 9, 1000, nullptr);
    co_await k.sysSendTo(t, static_cast<int>(fd), dst, 1000, 1000,
                         nullptr);
}

TEST(KernelTxPath, CpuPacesWireReleases)
{
    // On a 10 Gbps wire (1.2 us serialization for ~1 kB) the fixed-CPI
    // stack (34k cycles at 4 GHz = 8.5 us per UDP packet) is the pacing
    // bottleneck: back-to-back sends leave >= 8.5 us apart.
    test::TwoNodeHarness h({}, KernelProfile::linux2639(), {},
                           Bandwidth::gbps(10), SimTime::ns(100));
    std::vector<SimTime> arrivals;

    struct Snoop : net::PacketSink {
        std::vector<SimTime> *times;
        Simulator *sim;
        net::PacketSink *next;

        void
        receive(net::PacketPtr p) override
        {
            times->push_back(sim->now());
            next->receive(std::move(p));
        }
    } snoop;
    snoop.times = &arrivals;
    snoop.sim = &h.sim;
    snoop.next = &h.b.nic;
    h.a.tx_link->connectTo(snoop);

    h.a.kernel.spawnProcess(sendTwo(h.a.kernel, 2));
    h.sim.run();

    ASSERT_EQ(arrivals.size(), 2u);
    const SimTime gap = arrivals[1] - arrivals[0];
    const SimTime stack = SimTime::nanoseconds(
        34000 / 4.0); // udp_tx cycles at 4 GHz
    EXPECT_GE(gap, stack.scaled(0.95));
    EXPECT_LE(gap, stack.scaled(1.5));
}

Task<>
loopback(Kernel &k, long *got)
{
    Thread &t = k.createThread("lo");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), 99);
    co_await k.sysSendTo(t, static_cast<int>(fd), k.node(), 99, 321,
                         nullptr);
    RecvedMessage m;
    *got = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m, 10_ms);
}

TEST(KernelTxPath, LoopbackBypassesTheFabric)
{
    test::TwoNodeHarness h;
    long got = -1;
    h.a.kernel.spawnProcess(loopback(h.a.kernel, &got));
    h.sim.run();
    EXPECT_EQ(got, 321);
    EXPECT_EQ(h.a.nic.txPackets(), 0u); // never touched the NIC
}

Task<>
hugeDatagram(Kernel &k, net::NodeId dst)
{
    Thread &t = k.createThread("huge");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    // ~2.9 MB datagram -> ~2000 fragments: overflows txqueuelen (1000)
    // after the 256-entry NIC ring fills.
    co_await k.sysSendTo(t, static_cast<int>(fd), dst, 9, 2900000,
                         nullptr);
}

TEST(KernelTxPath, QdiscTailDropsUnderBacklog)
{
    test::TwoNodeHarness h;
    h.a.kernel.spawnProcess(hugeDatagram(h.a.kernel, 2));
    h.sim.run();
    EXPECT_GT(h.a.kernel.stats().qdisc_drops, 0u);
    // The datagram can never reassemble: nothing delivered, no crash.
    EXPECT_GT(h.b.kernel.stats().rx_packets, 0u);
}

} // namespace
} // namespace os
} // namespace diablo
