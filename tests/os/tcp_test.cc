#include <gtest/gtest.h>

#include "os/node_test_util.hh"

namespace diablo {
namespace os {
namespace {

using namespace diablo::time_literals;
using test::TwoNodeHarness;

struct XferResult {
    bool server_done = false;
    bool client_done = false;
    uint64_t server_rx_total = 0;
    int server_msgs = 0;
    long connect_rc = 12345;
    long accept_fd = -1;
    SimTime elapsed;
    long eof_rc = 12345;
};

/** Accepts one connection and drains it until EOF. */
Task<>
tcpSinkServer(Kernel &k, bool use_accept4, XferResult &r)
{
    Thread &t = k.createThread("server");
    long lfd = co_await k.sysSocket(t, net::Proto::Tcp);
    co_await k.sysBind(t, static_cast<int>(lfd), 5001);
    co_await k.sysListen(t, static_cast<int>(lfd), 128);
    r.accept_fd = co_await k.sysAccept(t, static_cast<int>(lfd),
                                       use_accept4);
    EXPECT_GT(r.accept_fd, 0);

    while (true) {
        std::vector<RecvedMessage> msgs;
        long n = co_await k.sysRecv(t, static_cast<int>(r.accept_fd),
                                    1 << 20, &msgs);
        if (n <= 0) {
            r.eof_rc = n;
            break;
        }
        r.server_rx_total += static_cast<uint64_t>(n);
        r.server_msgs += static_cast<int>(msgs.size());
    }
    r.server_done = true;
}

struct TestMsg : net::AppData {
    explicit TestMsg(int id) : id(id) {}
    int id;
};

/** Connects, sends @p messages of @p bytes each, closes. */
Task<>
tcpBulkClient(Kernel &k, net::NodeId dst, int messages, uint64_t bytes,
              XferResult &r)
{
    Thread &t = k.createThread("client");
    long fd = co_await k.sysSocket(t, net::Proto::Tcp);
    SimTime start = k.sim().now();
    r.connect_rc = co_await k.sysConnect(t, static_cast<int>(fd), dst,
                                         5001);
    if (r.connect_rc != 0) {
        r.client_done = true;
        co_return;
    }
    for (int i = 0; i < messages; ++i) {
        long n = co_await k.sysSend(t, static_cast<int>(fd), bytes,
                                    std::make_shared<TestMsg>(i));
        EXPECT_EQ(n, static_cast<long>(bytes));
    }
    co_await k.sysClose(t, static_cast<int>(fd));
    r.elapsed = k.sim().now() - start;
    r.client_done = true;
}

TEST(TcpStack, ConnectSendReceiveEof)
{
    TwoNodeHarness h;
    XferResult r;
    h.b.kernel.spawnProcess(tcpSinkServer(h.b.kernel, true, r));
    h.a.kernel.spawnProcess(tcpBulkClient(h.a.kernel, 2, 3, 10000, r));
    h.sim.run();

    EXPECT_EQ(r.connect_rc, 0);
    EXPECT_TRUE(r.client_done);
    EXPECT_TRUE(r.server_done);
    EXPECT_EQ(r.server_rx_total, 30000u);
    EXPECT_EQ(r.server_msgs, 3);
    EXPECT_EQ(r.eof_rc, 0);
}

TEST(TcpStack, BulkThroughputApproachesLineRate)
{
    // 4 MB over a 1 Gbps wire: ideal ~33.5 ms; allow up to 60 ms for
    // protocol and CPU overheads.
    TwoNodeHarness h;
    XferResult r;
    h.b.kernel.spawnProcess(tcpSinkServer(h.b.kernel, true, r));
    h.a.kernel.spawnProcess(tcpBulkClient(h.a.kernel, 2, 16, 262144, r));
    h.sim.run();

    EXPECT_EQ(r.server_rx_total, 16u * 262144u);
    double goodput_mbps =
        static_cast<double>(r.server_rx_total) * 8.0 /
        r.elapsed.asSeconds() / 1e6;
    EXPECT_GT(goodput_mbps, 550.0);
    EXPECT_LT(goodput_mbps, 1000.0);
}

TEST(TcpStack, ConnectionRefusedWithoutListener)
{
    TwoNodeHarness h;
    XferResult r;
    h.a.kernel.spawnProcess(tcpBulkClient(h.a.kernel, 2, 1, 100, r));
    h.sim.run();
    EXPECT_EQ(r.connect_rc, err::kConnRefused);
    EXPECT_TRUE(r.client_done);
}

TEST(TcpStack, Accept4IsCheaperThanAccept)
{
    // Run the identical workload with accept() vs accept4() and compare
    // server CPU consumption: the accept4 path must burn strictly fewer
    // cycles (one fewer syscall round trip per accepted connection).
    SimTime cpu_accept, cpu_accept4;
    {
        TwoNodeHarness h;
        XferResult r;
        h.b.kernel.spawnProcess(tcpSinkServer(h.b.kernel, false, r));
        h.a.kernel.spawnProcess(tcpBulkClient(h.a.kernel, 2, 1, 1000, r));
        h.sim.run();
        EXPECT_TRUE(r.server_done);
        cpu_accept = h.b.kernel.cpu().totalBusyTime();
    }
    {
        TwoNodeHarness h;
        XferResult r;
        h.b.kernel.spawnProcess(tcpSinkServer(h.b.kernel, true, r));
        h.a.kernel.spawnProcess(tcpBulkClient(h.a.kernel, 2, 1, 1000, r));
        h.sim.run();
        EXPECT_TRUE(r.server_done);
        cpu_accept4 = h.b.kernel.cpu().totalBusyTime();
    }
    EXPECT_LT(cpu_accept4, cpu_accept);
    // The delta is one fcntl round trip: ~1.3k cycles plus crossings.
    const KernelProfile prof = KernelProfile::linux2639();
    const uint64_t delta_cycles =
        prof.accept_extra_fcntl_cycles + prof.syscall_entry_cycles +
        prof.syscall_exit_cycles;
    EXPECT_EQ((cpu_accept - cpu_accept4).toPs(),
              static_cast<int64_t>(delta_cycles * 250)); // 250 ps @ 4 GHz
}

TEST(TcpStack, DeterministicAcrossRuns)
{
    auto run = [] {
        TwoNodeHarness h;
        XferResult r;
        h.b.kernel.spawnProcess(tcpSinkServer(h.b.kernel, true, r));
        h.a.kernel.spawnProcess(tcpBulkClient(h.a.kernel, 2, 8, 50000, r));
        h.sim.run();
        return std::pair<int64_t, uint64_t>{h.sim.now().toPs(),
                                            h.sim.executedEvents()};
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

struct PingPongResult {
    int rounds_done = 0;
    SimTime first_rtt;
    bool done = false;
};

Task<>
tcpPingServer(Kernel &k)
{
    Thread &t = k.createThread("pingsrv");
    long lfd = co_await k.sysSocket(t, net::Proto::Tcp);
    co_await k.sysBind(t, static_cast<int>(lfd), 5002);
    co_await k.sysListen(t, static_cast<int>(lfd), 16);
    long fd = co_await k.sysAccept(t, static_cast<int>(lfd), true);
    while (true) {
        std::vector<RecvedMessage> msgs;
        long n = co_await k.sysRecv(t, static_cast<int>(fd), 4096, &msgs);
        if (n <= 0) {
            break;
        }
        co_await k.sysSend(t, static_cast<int>(fd),
                           static_cast<uint64_t>(n), nullptr);
    }
}

Task<>
tcpPingClient(Kernel &k, net::NodeId dst, int rounds, PingPongResult &r)
{
    Thread &t = k.createThread("ping");
    long fd = co_await k.sysSocket(t, net::Proto::Tcp);
    long rc = co_await k.sysConnect(t, static_cast<int>(fd), dst, 5002);
    EXPECT_EQ(rc, 0);
    for (int i = 0; i < rounds; ++i) {
        SimTime start = k.sim().now();
        co_await k.sysSend(t, static_cast<int>(fd), 64, nullptr);
        uint64_t got = 0;
        while (got < 64) {
            long n = co_await k.sysRecv(t, static_cast<int>(fd), 64 - got,
                                        nullptr);
            if (n <= 0) {
                break;
            }
            got += static_cast<uint64_t>(n);
        }
        if (i == 0) {
            r.first_rtt = k.sim().now() - start;
        }
        ++r.rounds_done;
    }
    co_await k.sysClose(t, static_cast<int>(fd));
    r.done = true;
}

TEST(TcpStack, PingPongLatencyScale)
{
    TwoNodeHarness h;
    PingPongResult r;
    h.b.kernel.spawnProcess(tcpPingServer(h.b.kernel));
    h.a.kernel.spawnProcess(tcpPingClient(h.a.kernel, 2, 50, r));
    h.sim.run();

    EXPECT_TRUE(r.done);
    EXPECT_EQ(r.rounds_done, 50);
    // 64 B app-level ping-pong over one hop: tens of microseconds, far
    // below a delayed-ACK or RTO artifact (which would be >= 40 ms).
    EXPECT_GT(r.first_rtt, 5_us);
    EXPECT_LT(r.first_rtt, 500_us);
    // The whole 50-round exchange must not contain RTO stalls.
    EXPECT_LT(h.sim.now(), 100_ms);
}

} // namespace
} // namespace os
} // namespace diablo
