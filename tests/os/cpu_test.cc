#include <gtest/gtest.h>

#include <vector>

#include "os/cpu.hh"

namespace diablo {
namespace os {
namespace {

using namespace diablo::time_literals;

CpuParams
ghz(double f)
{
    CpuParams p;
    p.freq_ghz = f;
    return p;
}

TEST(Cpu, FixedCpiTiming)
{
    Simulator sim;
    Cpu cpu(sim, ghz(4.0), 1000000, 0);
    SimTime done_at;
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 4000, 1, [&] { done_at = sim.now(); });
    });
    sim.run();
    // 4000 cycles at 4 GHz = 1 us.
    EXPECT_EQ(done_at, 1_us);
}

TEST(Cpu, CpiScalesTime)
{
    Simulator sim;
    CpuParams p = ghz(2.0);
    p.cpi = 2.0;
    Cpu cpu(sim, p, 1000000, 0);
    SimTime done_at;
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 1000, 1, [&] { done_at = sim.now(); });
    });
    sim.run();
    // 1000 instr * 2 CPI / 2 GHz = 1 us.
    EXPECT_EQ(done_at, 1_us);
}

TEST(Cpu, FifoWithinClass)
{
    Simulator sim;
    Cpu cpu(sim, ghz(1.0), 1ULL << 40, 0);
    std::vector<int> order;
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 100, 1, [&] { order.push_back(1); });
        cpu.submit(SchedClass::User, 100, 1, [&] { order.push_back(2); });
        cpu.submit(SchedClass::User, 100, 1, [&] { order.push_back(3); });
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Cpu, IrqPreemptsUser)
{
    Simulator sim;
    Cpu cpu(sim, ghz(1.0), 1ULL << 40, 0);
    SimTime user_done, irq_done;
    sim.schedule(0_ns, [&] {
        // 10 us of user work.
        cpu.submit(SchedClass::User, 10000, 1,
                   [&] { user_done = sim.now(); });
    });
    sim.schedule(2_us, [&] {
        // 1 us IRQ arrives mid-run.
        cpu.submit(SchedClass::Irq, 1000, 0,
                   [&] { irq_done = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(irq_done, 3_us);   // runs immediately on arrival
    EXPECT_EQ(user_done, 11_us); // pushed back by the interrupt
}

TEST(Cpu, PriorityOrderAcrossClasses)
{
    Simulator sim;
    Cpu cpu(sim, ghz(1.0), 1ULL << 40, 0);
    std::vector<int> order;
    sim.schedule(0_ns, [&] {
        // Occupy the CPU briefly so everything below queues.
        cpu.submit(SchedClass::Kernel, 100, 0, [] {});
        cpu.submit(SchedClass::User, 10, 1, [&] { order.push_back(3); });
        cpu.submit(SchedClass::SoftIrq, 10, 0, [&] { order.push_back(1); });
        cpu.submit(SchedClass::Kernel, 10, 0, [&] { order.push_back(2); });
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Cpu, TimesliceRoundRobin)
{
    Simulator sim;
    // Timeslice = 1000 cycles at 1 GHz = 1 us.
    Cpu cpu(sim, ghz(1.0), 1000, 0);
    SimTime a_done, b_done;
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 3000, 1, [&] { a_done = sim.now(); });
        cpu.submit(SchedClass::User, 1000, 2, [&] { b_done = sim.now(); });
    });
    sim.run();
    // A runs [0,1), B runs [1,2), A finishes its remaining 2000.
    EXPECT_EQ(b_done, 2_us);
    EXPECT_EQ(a_done, 4_us);
}

TEST(Cpu, ContextSwitchChargedOnThreadChange)
{
    Simulator sim;
    Cpu cpu(sim, ghz(1.0), 1000000, 500);
    SimTime b_done;
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 1000, 1, [] {});
        cpu.submit(SchedClass::User, 1000, 2, [&] { b_done = sim.now(); });
    });
    sim.run();
    // Thread 1: 1000 cycles (first dispatch is free);
    // thread 2: 500 switch + 1000 work.
    EXPECT_EQ(b_done, SimTime::ns(2500));
    EXPECT_EQ(cpu.contextSwitches(), 1u);
}

TEST(Cpu, NoSwitchChargeForSameThread)
{
    Simulator sim;
    Cpu cpu(sim, ghz(1.0), 1000000, 500);
    SimTime done;
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 1000, 7, [] {});
        cpu.submit(SchedClass::User, 1000, 7, [&] { done = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(done, 2_us);
    EXPECT_EQ(cpu.contextSwitches(), 0u);
}

TEST(Cpu, PreemptionPreservesRemainingWork)
{
    Simulator sim;
    Cpu cpu(sim, ghz(1.0), 1ULL << 40, 0);
    SimTime user_done;
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 10000, 1,
                   [&] { user_done = sim.now(); });
    });
    // Three interrupts of 1 us each.
    for (int i = 1; i <= 3; ++i) {
        sim.schedule(SimTime::us(i * 2), [&] {
            cpu.submit(SchedClass::Irq, 1000, 0, [] {});
        });
    }
    sim.run();
    EXPECT_EQ(user_done, 13_us); // 10 us work + 3 us of interrupts
}

TEST(Cpu, UtilizationAndBusyAccounting)
{
    Simulator sim;
    Cpu cpu(sim, ghz(1.0), 1ULL << 40, 0);
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 5000, 1, [] {});
        cpu.submit(SchedClass::SoftIrq, 3000, 0, [] {});
    });
    sim.scheduleAt(16_us, [] {}); // idle tail
    sim.run();
    EXPECT_EQ(cpu.busyTime(SchedClass::User), 5_us);
    EXPECT_EQ(cpu.busyTime(SchedClass::SoftIrq), 3_us);
    EXPECT_NEAR(cpu.utilization(), 0.5, 1e-9);
}

TEST(Cpu, ZeroCycleWorkStillCompletes)
{
    Simulator sim;
    Cpu cpu(sim, ghz(1.0), 1000, 0);
    bool done = false;
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 0, 1, [&] { done = true; });
    });
    sim.run();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace os
} // namespace diablo
