#include <gtest/gtest.h>

#include <vector>

#include "core/task.hh"
#include "os/wait_queue.hh"

namespace diablo {
namespace os {
namespace {

using namespace diablo::time_literals;

Task<>
waiter(WaitQueue &wq, SimTime timeout, std::vector<long> &results)
{
    long r = co_await wq.wait(timeout);
    results.push_back(r);
}

TEST(WaitQueue, WakeOneFifo)
{
    Simulator sim;
    WaitQueue wq(sim);
    std::vector<long> results;
    sim.spawn(waiter(wq, SimTime::max(), results));
    sim.spawn(waiter(wq, SimTime::max(), results));
    sim.schedule(10_ns, [&] { wq.wakeOne(1); });
    sim.schedule(20_ns, [&] { wq.wakeOne(2); });
    sim.run();
    EXPECT_EQ(results, (std::vector<long>{1, 2}));
}

TEST(WaitQueue, WakeAllDelivers)
{
    Simulator sim;
    WaitQueue wq(sim);
    std::vector<long> results;
    for (int i = 0; i < 5; ++i) {
        sim.spawn(waiter(wq, SimTime::max(), results));
    }
    sim.schedule(10_ns, [&] { wq.wakeAll(7); });
    sim.run();
    EXPECT_EQ(results, (std::vector<long>(5, 7)));
}

TEST(WaitQueue, TimeoutFires)
{
    Simulator sim;
    WaitQueue wq(sim);
    std::vector<long> results;
    sim.spawn(waiter(wq, 100_ns, results));
    sim.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0], kWaitTimedOut);
    EXPECT_EQ(sim.now(), 100_ns);
}

TEST(WaitQueue, WakeBeforeTimeoutCancelsTimer)
{
    Simulator sim;
    WaitQueue wq(sim);
    std::vector<long> results;
    sim.spawn(waiter(wq, 100_ns, results));
    sim.schedule(50_ns, [&] { wq.wakeOne(42); });
    sim.run();
    EXPECT_EQ(results, (std::vector<long>{42}));
    EXPECT_LE(sim.now(), 100_ns);
}

TEST(WaitQueue, TimedOutWaiterNotWokenLater)
{
    Simulator sim;
    WaitQueue wq(sim);
    std::vector<long> results;
    sim.spawn(waiter(wq, 10_ns, results));
    sim.spawn(waiter(wq, SimTime::max(), results));
    // Wake after the first waiter timed out: must reach the second.
    sim.schedule(50_ns, [&] { EXPECT_TRUE(wq.wakeOne(9)); });
    sim.run();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0], kWaitTimedOut);
    EXPECT_EQ(results[1], 9);
}

TEST(WaitQueue, WakeOneWithNoWaitersReturnsFalse)
{
    Simulator sim;
    WaitQueue wq(sim);
    EXPECT_FALSE(wq.wakeOne(1));
    EXPECT_FALSE(wq.hasWaiters());
}

TEST(WaitQueue, HasWaitersReflectsState)
{
    Simulator sim;
    WaitQueue wq(sim);
    std::vector<long> results;
    sim.spawn(waiter(wq, SimTime::max(), results));
    sim.schedule(5_ns, [&] {
        EXPECT_TRUE(wq.hasWaiters());
        wq.wakeOne(0);
        EXPECT_FALSE(wq.hasWaiters());
    });
    sim.run();
}

} // namespace
} // namespace os
} // namespace diablo
