#include <gtest/gtest.h>

#include "os/cpu.hh"
#include "os/node_test_util.hh"

namespace diablo {
namespace os {
namespace {

using namespace diablo::time_literals;

CpuParams
multi(uint32_t cores, double ghz = 1.0)
{
    CpuParams p;
    p.freq_ghz = ghz;
    p.cores = cores;
    return p;
}

TEST(MultiCoreCpu, IndependentWorkRunsConcurrently)
{
    Simulator sim;
    Cpu cpu(sim, multi(2), 1ULL << 40, 0);
    SimTime a_done, b_done;
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 1000, 1, [&] { a_done = sim.now(); });
        cpu.submit(SchedClass::User, 1000, 2, [&] { b_done = sim.now(); });
    });
    sim.run();
    // Both finish at 1 us: true parallelism across two cores.
    EXPECT_EQ(a_done, 1_us);
    EXPECT_EQ(b_done, 1_us);
}

TEST(MultiCoreCpu, FourThreadsOnTwoCoresTakeTwoRounds)
{
    Simulator sim;
    Cpu cpu(sim, multi(2), 1ULL << 40, 0);
    std::vector<SimTime> done(4);
    sim.schedule(0_ns, [&] {
        for (uint64_t i = 0; i < 4; ++i) {
            cpu.submit(SchedClass::User, 1000, i + 1,
                       [&, i] { done[i] = sim.now(); });
        }
    });
    sim.run();
    EXPECT_EQ(done[0], 1_us);
    EXPECT_EQ(done[1], 1_us);
    EXPECT_EQ(done[2], 2_us);
    EXPECT_EQ(done[3], 2_us);
}

TEST(MultiCoreCpu, IrqPreemptsOnlyOneCore)
{
    Simulator sim;
    Cpu cpu(sim, multi(2), 1ULL << 40, 0);
    SimTime a_done, b_done, irq_done;
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 10000, 1, [&] { a_done = sim.now(); });
        cpu.submit(SchedClass::User, 10000, 2, [&] { b_done = sim.now(); });
    });
    sim.schedule(2_us, [&] {
        cpu.submit(SchedClass::Irq, 1000, 0, [&] { irq_done = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(irq_done, 3_us);
    // Exactly one user thread was delayed by the interrupt.
    const SimTime earlier = std::min(a_done, b_done);
    const SimTime later = std::max(a_done, b_done);
    EXPECT_EQ(earlier, 10_us);
    EXPECT_EQ(later, 11_us);
}

TEST(MultiCoreCpu, UtilizationNormalizedByCores)
{
    Simulator sim;
    Cpu cpu(sim, multi(4), 1ULL << 40, 0);
    sim.schedule(0_ns, [&] {
        cpu.submit(SchedClass::User, 4000, 1, [] {});
    });
    sim.scheduleAt(8_us, [] {});
    sim.run();
    // One core busy 4 us of 8 us, over 4 cores: 12.5%.
    EXPECT_NEAR(cpu.utilization(), 0.125, 1e-9);
}

TEST(MultiCoreCpu, PerCoreContextSwitchAccounting)
{
    Simulator sim;
    Cpu cpu(sim, multi(2), 1ULL << 40, 500);
    SimTime d1, d2, d3, d4;
    sim.schedule(0_ns, [&] {
        // Threads 1,2 land on cores 0,1; then 1 and 2 again: same-core
        // affinity by queue order means no switch is guaranteed, but
        // a *different* pair definitely pays.
        cpu.submit(SchedClass::User, 1000, 1, [&] { d1 = sim.now(); });
        cpu.submit(SchedClass::User, 1000, 2, [&] { d2 = sim.now(); });
        cpu.submit(SchedClass::User, 1000, 3, [&] { d3 = sim.now(); });
        cpu.submit(SchedClass::User, 1000, 4, [&] { d4 = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(cpu.contextSwitches(), 2u); // threads 3 and 4 switch in
    EXPECT_EQ(d3, SimTime::ns(2500));
    EXPECT_EQ(d4, SimTime::ns(2500));
}

TEST(MultiCoreCpu, DeterministicPlacement)
{
    auto run = [] {
        Simulator sim;
        Cpu cpu(sim, multi(3), 2000, 300);
        std::vector<int64_t> done;
        sim.schedule(0_ns, [&] {
            for (uint64_t i = 0; i < 9; ++i) {
                cpu.submit(SchedClass::User, 700 + i * 13, i + 1,
                           [&] { done.push_back(sim.now().toPs()); });
            }
        });
        sim.run();
        return done;
    };
    EXPECT_EQ(run(), run());
}

/** Full-stack check: a dual-core server handles concurrent requests
 *  faster than a single core once the CPU is the bottleneck. */
Task<>
burnWorker(Kernel &k, int fd)
{
    Thread &t = k.createThread("burn-w");
    while (true) {
        os::RecvedMessage m;
        long n = co_await k.sysRecvFrom(t, fd, &m);
        if (n < 0) {
            co_return;
        }
        co_await t.compute(4000000); // 1 ms at 4 GHz per request
        co_await k.sysSendTo(t, fd, m.from, m.from_port, 64, nullptr);
    }
}

Task<>
burnServer(Kernel &k, uint16_t port)
{
    Thread &t = k.createThread("burn-main");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), port);
    // Two worker threads sharing the socket (memcached-UDP style).
    k.spawnProcess(burnWorker(k, static_cast<int>(fd)));
    k.spawnProcess(burnWorker(k, static_cast<int>(fd)));
}

Task<>
burstClient(Kernel &k, int n, SimTime *finished)
{
    Thread &t = k.createThread("burst");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    for (int i = 0; i < n; ++i) {
        co_await k.sysSendTo(t, static_cast<int>(fd), 2, 7, 64, nullptr);
    }
    for (int i = 0; i < n; ++i) {
        os::RecvedMessage m;
        co_await k.sysRecvFrom(t, static_cast<int>(fd), &m);
    }
    *finished = k.sim().now();
}

TEST(MultiCoreCpu, DualCoreServerDoublesComputeThroughput)
{
    auto run = [](uint32_t cores) {
        CpuParams cp;
        cp.cores = cores;
        test::TwoNodeHarness h(cp);
        h.b.kernel.spawnProcess(burnServer(h.b.kernel, 7));
        SimTime finished;
        h.a.kernel.spawnProcess(burstClient(h.a.kernel, 8, &finished));
        h.sim.run();
        return finished;
    };
    SimTime one = run(1);
    SimTime two = run(2);
    // 8 requests x 1 ms of service: ~8 ms serialized, ~4 ms dual-core.
    EXPECT_GT(one, 8_ms);
    EXPECT_LT(two, one.scaled(0.65));
}

} // namespace
} // namespace os
} // namespace diablo
