#include <gtest/gtest.h>

#include "os/node_test_util.hh"

namespace diablo {
namespace os {
namespace {

using namespace diablo::time_literals;
using test::TwoNodeHarness;

struct EpollResult {
    long wait_rc = -999;
    std::vector<int> ready_fds;
    long fd_a = -1;
    long fd_b = -1;
    bool done = false;
    int wakeups = 0;
};

Task<>
epollServer(Kernel &k, EpollResult &r)
{
    Thread &t = k.createThread("epsrv");
    r.fd_a = co_await k.sysSocket(t, net::Proto::Udp);
    r.fd_b = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(r.fd_a), 100);
    co_await k.sysBind(t, static_cast<int>(r.fd_b), 200);

    long ep = co_await k.sysEpollCreate(t);
    co_await k.sysEpollCtlAdd(t, static_cast<int>(ep),
                              static_cast<int>(r.fd_a));
    co_await k.sysEpollCtlAdd(t, static_cast<int>(ep),
                              static_cast<int>(r.fd_b));

    std::vector<EpollEvent> events;
    r.wait_rc = co_await k.sysEpollWait(t, static_cast<int>(ep), &events,
                                        16);
    for (const auto &e : events) {
        r.ready_fds.push_back(e.fd);
    }
    r.done = true;
}

Task<>
udpSendOnce(Kernel &k, net::NodeId dst, uint16_t port, uint64_t bytes)
{
    Thread &t = k.createThread("snd");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysSendTo(t, static_cast<int>(fd), dst, port, bytes,
                         nullptr);
}

TEST(Epoll, WaitReturnsReadyFd)
{
    TwoNodeHarness h;
    EpollResult r;
    h.b.kernel.spawnProcess(epollServer(h.b.kernel, r));
    h.a.kernel.spawnProcess(udpSendOnce(h.a.kernel, 2, 200, 500));
    h.sim.run();

    EXPECT_TRUE(r.done);
    EXPECT_EQ(r.wait_rc, 1);
    ASSERT_EQ(r.ready_fds.size(), 1u);
    EXPECT_EQ(r.ready_fds[0], static_cast<int>(r.fd_b));
}

Task<>
epollTimeoutServer(Kernel &k, EpollResult &r)
{
    Thread &t = k.createThread("eptmo");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), 100);
    long ep = co_await k.sysEpollCreate(t);
    co_await k.sysEpollCtlAdd(t, static_cast<int>(ep),
                              static_cast<int>(fd));
    std::vector<EpollEvent> events;
    r.wait_rc = co_await k.sysEpollWait(t, static_cast<int>(ep), &events,
                                        16, 2_ms);
    r.done = true;
}

TEST(Epoll, WaitTimesOutWithZero)
{
    TwoNodeHarness h;
    EpollResult r;
    h.b.kernel.spawnProcess(epollTimeoutServer(h.b.kernel, r));
    h.sim.run();
    EXPECT_TRUE(r.done);
    EXPECT_EQ(r.wait_rc, 0);
    EXPECT_GE(h.sim.now(), 2_ms);
}

Task<>
epollReadinessAlreadyPending(Kernel &k, EpollResult &r)
{
    Thread &t = k.createThread("eplate");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), 300);
    // Sleep so the datagram arrives before epoll registration.
    co_await k.sim().sleep(5_ms);
    long ep = co_await k.sysEpollCreate(t);
    co_await k.sysEpollCtlAdd(t, static_cast<int>(ep),
                              static_cast<int>(fd));
    std::vector<EpollEvent> events;
    r.wait_rc = co_await k.sysEpollWait(t, static_cast<int>(ep), &events,
                                        16);
    r.done = true;
}

TEST(Epoll, RegistrationSeesPreexistingReadiness)
{
    TwoNodeHarness h;
    EpollResult r;
    h.b.kernel.spawnProcess(epollReadinessAlreadyPending(h.b.kernel, r));
    h.a.kernel.spawnProcess(udpSendOnce(h.a.kernel, 2, 300, 100));
    h.sim.run();
    EXPECT_TRUE(r.done);
    EXPECT_EQ(r.wait_rc, 1);
}

Task<>
epollLevelTriggeredServer(Kernel &k, EpollResult &r)
{
    Thread &t = k.createThread("eplt");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), 400);
    long ep = co_await k.sysEpollCreate(t);
    co_await k.sysEpollCtlAdd(t, static_cast<int>(ep),
                              static_cast<int>(fd));

    // Two datagrams arrive; drain only one per wait round.  Level
    // triggering must report the fd again immediately.
    for (int round = 0; round < 2; ++round) {
        std::vector<EpollEvent> events;
        long n = co_await k.sysEpollWait(t, static_cast<int>(ep), &events,
                                         16);
        EXPECT_EQ(n, 1);
        ++r.wakeups;
        RecvedMessage m;
        co_await k.sysRecvFrom(t, static_cast<int>(fd), &m);
    }
    // Queue drained: this wait must now time out.
    std::vector<EpollEvent> events;
    r.wait_rc = co_await k.sysEpollWait(t, static_cast<int>(ep), &events,
                                        16, 1_ms);
    r.done = true;
}

Task<>
udpSendTwice(Kernel &k, net::NodeId dst, uint16_t port)
{
    Thread &t = k.createThread("snd2");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysSendTo(t, static_cast<int>(fd), dst, port, 100, nullptr);
    co_await k.sysSendTo(t, static_cast<int>(fd), dst, port, 100, nullptr);
}

TEST(Epoll, LevelTriggeredSemantics)
{
    TwoNodeHarness h;
    EpollResult r;
    h.b.kernel.spawnProcess(epollLevelTriggeredServer(h.b.kernel, r));
    h.a.kernel.spawnProcess(udpSendTwice(h.a.kernel, 2, 400));
    h.sim.run();
    EXPECT_TRUE(r.done);
    EXPECT_EQ(r.wakeups, 2);
    EXPECT_EQ(r.wait_rc, 0); // drained -> timeout
}

} // namespace
} // namespace os
} // namespace diablo
