#include <gtest/gtest.h>

#include "net/fault_injection.hh"
#include "os/node_test_util.hh"

namespace diablo {
namespace os {
namespace {

using namespace diablo::time_literals;

/** One point in the TCP configuration x loss space. */
struct TcpCase {
    uint32_t mss;
    uint32_t init_cwnd;
    bool delayed_ack;
    double loss;
    uint64_t bytes;
    uint64_t seed;
};

std::string
caseName(const testing::TestParamInfo<TcpCase> &info)
{
    const TcpCase &c = info.param;
    return "mss" + std::to_string(c.mss) + "_iw" +
           std::to_string(c.init_cwnd) + (c.delayed_ack ? "_da" : "_noda") +
           "_loss" + std::to_string(static_cast<int>(c.loss * 100)) +
           "_b" + std::to_string(c.bytes) + "_s" +
           std::to_string(c.seed);
}

struct Result {
    uint64_t rx_bytes = 0;
    int rx_msgs = 0;
    bool server_done = false;
};

struct PropMsg : net::AppData {
    explicit PropMsg(int id) : id(id) {}
    int id;
};

Task<>
server(Kernel &k, Result &r)
{
    Thread &t = k.createThread("s");
    long lfd = co_await k.sysSocket(t, net::Proto::Tcp);
    co_await k.sysBind(t, static_cast<int>(lfd), 5001);
    co_await k.sysListen(t, static_cast<int>(lfd), 8);
    long fd = co_await k.sysAccept(t, static_cast<int>(lfd), true);
    while (true) {
        std::vector<RecvedMessage> msgs;
        long n = co_await k.sysRecv(t, static_cast<int>(fd), 1 << 20,
                                    &msgs);
        if (n <= 0) {
            break;
        }
        r.rx_bytes += static_cast<uint64_t>(n);
        r.rx_msgs += static_cast<int>(msgs.size());
    }
    r.server_done = true;
}

Task<>
client(Kernel &k, uint64_t bytes, int messages)
{
    Thread &t = k.createThread("c");
    long fd = co_await k.sysSocket(t, net::Proto::Tcp);
    long rc = co_await k.sysConnect(t, static_cast<int>(fd), 2, 5001);
    EXPECT_EQ(rc, 0);
    for (int i = 0; i < messages; ++i) {
        co_await k.sysSend(t, static_cast<int>(fd), bytes / messages,
                           std::make_shared<PropMsg>(i));
    }
    co_await k.sysClose(t, static_cast<int>(fd));
}

/**
 * Property: for ANY TCP parameterization and loss rate, a transfer
 * delivers exactly the sent bytes and message framing survives; the
 * run is deterministic.
 */
class TcpProperties : public testing::TestWithParam<TcpCase> {};

TEST_P(TcpProperties, ExactlyOnceDeliveryUnderLoss)
{
    const TcpCase &c = GetParam();
    auto run = [&c] {
        Simulator sim;
        test::TestNode a(sim, 1, {}, KernelProfile::linux2639(), {},
                         Bandwidth::gbps(1), 1_us);
        test::TestNode b(sim, 2, {}, KernelProfile::linux2639(), {},
                         Bandwidth::gbps(1), 1_us);
        net::LossySink to_b(b.nic), to_a(a.nic);
        a.tx_link->connectTo(to_b);
        b.tx_link->connectTo(to_a);
        if (c.loss > 0) {
            to_b.dropRandomly(c.loss, c.seed);
            to_a.dropRandomly(c.loss / 2, c.seed * 3 + 1);
        }

        TcpParams tp;
        tp.mss = c.mss;
        tp.init_cwnd_segments = c.init_cwnd;
        tp.delayed_ack = c.delayed_ack;
        a.kernel.setTcpParams(tp);
        b.kernel.setTcpParams(tp);

        Result r;
        b.kernel.spawnProcess(server(b.kernel, r));
        a.kernel.spawnProcess(client(a.kernel, c.bytes, 4));
        sim.run();

        EXPECT_TRUE(r.server_done);
        EXPECT_EQ(r.rx_bytes, c.bytes);
        EXPECT_EQ(r.rx_msgs, 4);
        return std::pair(sim.now().toPs(), sim.executedEvents());
    };
    auto first = run();
    auto second = run();
    EXPECT_EQ(first, second) << "nondeterministic run";
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, TcpProperties,
    testing::Values(
        TcpCase{1448, 10, true, 0.00, 200000, 1},
        TcpCase{1448, 10, true, 0.05, 200000, 2},
        TcpCase{1448, 3, true, 0.05, 200000, 3},
        TcpCase{1448, 10, false, 0.05, 200000, 4},
        TcpCase{536, 10, true, 0.05, 100000, 5},
        TcpCase{536, 3, false, 0.10, 100000, 6},
        TcpCase{8960, 10, true, 0.05, 400000, 7},   // jumbo frames
        TcpCase{1448, 10, true, 0.15, 60000, 8},
        TcpCase{1448, 1, true, 0.05, 60000, 9},     // IW1 stress
        TcpCase{100, 10, true, 0.02, 20000, 10}),   // tiny MSS
    caseName);

} // namespace
} // namespace os
} // namespace diablo
