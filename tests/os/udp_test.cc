#include <gtest/gtest.h>

#include "os/node_test_util.hh"

namespace diablo {
namespace os {
namespace {

using namespace diablo::time_literals;
using test::TwoNodeHarness;

struct EchoResult {
    bool server_done = false;
    bool client_done = false;
    long server_rx_bytes = -1;
    long client_rx_bytes = -1;
    net::NodeId server_saw_from = net::kInvalidNode;
    SimTime rtt;
    long recv_err = 0;
};

Task<>
udpEchoServer(Kernel &k, EchoResult &r)
{
    Thread &t = k.createThread("server");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    EXPECT_GE(fd, 0);
    long rc = co_await k.sysBind(t, static_cast<int>(fd), 7);
    EXPECT_EQ(rc, 0);
    RecvedMessage m;
    r.server_rx_bytes =
        co_await k.sysRecvFrom(t, static_cast<int>(fd), &m);
    r.server_saw_from = m.from;
    co_await k.sysSendTo(t, static_cast<int>(fd), m.from, m.from_port,
                         static_cast<uint64_t>(r.server_rx_bytes), nullptr);
    r.server_done = true;
}

Task<>
udpEchoClient(Kernel &k, net::NodeId server, uint64_t bytes, EchoResult &r)
{
    Thread &t = k.createThread("client");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    SimTime start = k.sim().now();
    co_await k.sysSendTo(t, static_cast<int>(fd), server, 7, bytes,
                         nullptr);
    RecvedMessage m;
    r.client_rx_bytes = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m);
    r.rtt = k.sim().now() - start;
    r.client_done = true;
}

TEST(UdpStack, EchoRoundTrip)
{
    TwoNodeHarness h;
    EchoResult r;
    h.b.kernel.spawnProcess(udpEchoServer(h.b.kernel, r));
    h.a.kernel.spawnProcess(udpEchoClient(h.a.kernel, 2, 1000, r));
    h.sim.run();

    EXPECT_TRUE(r.server_done);
    EXPECT_TRUE(r.client_done);
    EXPECT_EQ(r.server_rx_bytes, 1000);
    EXPECT_EQ(r.client_rx_bytes, 1000);
    EXPECT_EQ(r.server_saw_from, 1u);
    // Sanity on the absolute scale: a 1 kB UDP echo over one 1 Gbps hop
    // with 1 us propagation and a 4 GHz CPU is tens of microseconds.
    EXPECT_GT(r.rtt, 10_us);
    EXPECT_LT(r.rtt, 200_us);
}

TEST(UdpStack, LargeDatagramFragmentsAndReassembles)
{
    TwoNodeHarness h;
    EchoResult r;
    // 10 kB datagram -> 7 fragments.
    h.b.kernel.spawnProcess(udpEchoServer(h.b.kernel, r));
    h.a.kernel.spawnProcess(udpEchoClient(h.a.kernel, 2, 10000, r));
    h.sim.run();

    EXPECT_EQ(r.server_rx_bytes, 10000);
    EXPECT_EQ(r.client_rx_bytes, 10000);
    // 7 fragments each way plus nothing else on this quiet wire.
    EXPECT_EQ(h.a.nic.txPackets(), 7u);
    EXPECT_EQ(h.b.nic.txPackets(), 7u);
}

Task<>
udpRecvTimeout(Kernel &k, EchoResult &r)
{
    Thread &t = k.createThread("timeout");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), 9);
    RecvedMessage m;
    r.recv_err = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m, 5_ms);
    r.client_done = true;
}

TEST(UdpStack, RecvFromTimesOut)
{
    TwoNodeHarness h;
    EchoResult r;
    h.a.kernel.spawnProcess(udpRecvTimeout(h.a.kernel, r));
    h.sim.run();
    EXPECT_TRUE(r.client_done);
    EXPECT_EQ(r.recv_err, err::kTimedOut);
    EXPECT_GE(h.sim.now(), 5_ms);
}

struct FloodResult {
    int delivered = 0;
    uint64_t socket_drops = 0;
};

Task<>
udpFloodSender(Kernel &k, net::NodeId dst, int count, uint64_t bytes)
{
    Thread &t = k.createThread("flood");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    for (int i = 0; i < count; ++i) {
        co_await k.sysSendTo(t, static_cast<int>(fd), dst, 7, bytes,
                             nullptr);
    }
}

Task<>
udpSlowReceiver(Kernel &k, FloodResult &r)
{
    Thread &t = k.createThread("slow");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), 7);
    while (true) {
        RecvedMessage m;
        long n = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m, 20_ms);
        if (n == err::kTimedOut) {
            break;
        }
        ++r.delivered;
        // Slow consumer: 2 ms of app work per datagram.
        co_await t.compute(8000000);
    }
    r.socket_drops = k.socketFor(static_cast<int>(fd))->dgram_drops;
}

TEST(UdpStack, ReceiveBufferOverflowDrops)
{
    // 400 datagrams of 1 kB arrive far faster than a receiver that
    // burns 2 ms per datagram; the ~208 kB socket buffer must overflow.
    TwoNodeHarness h;
    FloodResult r;
    h.b.kernel.spawnProcess(udpSlowReceiver(h.b.kernel, r));
    h.a.kernel.spawnProcess(udpFloodSender(h.a.kernel, 2, 400, 1000));
    h.sim.run();

    EXPECT_GT(r.socket_drops, 0u);
    EXPECT_LT(r.delivered, 400);
    EXPECT_GT(r.delivered, 50); // buffer holds ~137 plus drain progress
    EXPECT_EQ(h.b.kernel.stats().udp_rx_overflow_drops, r.socket_drops);
}

TEST(UdpStack, UnboundPortIsDropped)
{
    TwoNodeHarness h;
    h.a.kernel.spawnProcess(udpFloodSender(h.a.kernel, 2, 3, 100));
    h.sim.run();
    EXPECT_EQ(h.b.kernel.stats().rx_packets, 3u);
    // Nothing delivered anywhere, no crash.
}

} // namespace
} // namespace os
} // namespace diablo
