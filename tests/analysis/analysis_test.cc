#include <gtest/gtest.h>

#include "analysis/report.hh"
#include "analysis/survey.hh"

namespace diablo {
namespace analysis {
namespace {

TEST(Survey, MatchesPaperAggregates)
{
    const auto &entries = sigcommSurvey();
    ASSERT_EQ(entries.size(), 21u);

    std::vector<double> servers, switches;
    int micro = 0, trace = 0, app = 0;
    for (const auto &e : entries) {
        servers.push_back(e.servers);
        switches.push_back(e.switches);
        switch (e.workload) {
          case SurveyWorkload::Microbenchmark: ++micro; break;
          case SurveyWorkload::Trace: ++trace; break;
          case SurveyWorkload::Application: ++app; break;
        }
    }
    // Figure 2: "the median size of physical testbeds contained only 16
    // servers and 6 switches".
    EXPECT_DOUBLE_EQ(medianOf(servers), 16.0);
    EXPECT_DOUBLE_EQ(medianOf(switches), 6.0);
    // Table 1: 16 microbenchmark / 3 trace / 2 application.
    EXPECT_EQ(micro, 16);
    EXPECT_EQ(trace, 3);
    EXPECT_EQ(app, 2);
}

TEST(Survey, AllEntriesAreSmallScale)
{
    // The paper's point: every testbed is orders of magnitude below a
    // real WSC array (~3,000 nodes).
    for (const auto &e : sigcommSurvey()) {
        EXPECT_LE(e.servers, 100u);
        EXPECT_GE(e.year, 2008);
        EXPECT_LE(e.year, 2013);
    }
}

TEST(MedianOf, EvenAndOddCounts)
{
    EXPECT_DOUBLE_EQ(medianOf({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(medianOf({4, 1, 2, 3}), 2.5);
    EXPECT_DOUBLE_EQ(medianOf({}), 0.0);
    EXPECT_DOUBLE_EQ(medianOf({7}), 7.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"servers", "goodput"});
    t.addRow({"1", "941.0"});
    t.addRow({"24", "17.4"});
    std::string s = t.str();
    EXPECT_NE(s.find("servers"), std::string::npos);
    EXPECT_NE(s.find("941.0"), std::string::npos);
    // Every rendered line has the same width.
    size_t width = s.find('\n');
    size_t pos = 0;
    while (pos < s.size()) {
        size_t next = s.find('\n', pos);
        EXPECT_EQ(next - pos, width);
        pos = next + 1;
    }
}

TEST(Table, CellFormats)
{
    EXPECT_EQ(Table::cell("%.1f", 3.25), "3.2");
    EXPECT_EQ(Table::cell("%d/%d", 3, 4), "3/4");
}

TEST(Table, RowArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "row has");
}

TEST(LatencySummary, ContainsPercentiles)
{
    SampleSet s;
    for (int i = 1; i <= 1000; ++i) {
        s.record(i);
    }
    std::string line = latencySummary(s);
    EXPECT_NE(line.find("p50="), std::string::npos);
    EXPECT_NE(line.find("p99="), std::string::npos);
    EXPECT_NE(line.find("n=1000"), std::string::npos);
}

} // namespace
} // namespace analysis
} // namespace diablo
