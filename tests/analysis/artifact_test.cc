#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string>

#include "analysis/artifact.hh"

namespace diablo {
namespace analysis {
namespace {

RunArtifact
sampleArtifact()
{
    RunArtifact a;
    a.workload = "incast";
    a.engine = "seq";
    a.nodes = 12;
    a.elapsed_us = 1500.0;
    a.goodput_mbps = 42.5;
    a.requests_completed = 3;

    LatencyStat lat;
    lat.record(100.0);
    lat.record(200.0);
    a.latencies.emplace_back("iteration_us", LatencyDigest::of(lat));

    auto &g = a.addGroup("network");
    g.counters = {{"switch_drops", 5}, {"forwarded", 1000}};

    RunArtifact::PartitionRow row;
    row.events = 999;
    row.pool_makes = 40;
    row.pool_returns = 40;
    row.pool_recycles = 39;
    row.pool_heap_allocs = 1;
    a.partition_rows.push_back(row);
    a.executed_events = 999;
    return a;
}

TEST(LatencyDigest, OfLatencyStatCarriesPercentilesAndFingerprint)
{
    LatencyStat s;
    for (int i = 1; i <= 100; ++i) {
        s.record(static_cast<double>(i));
    }
    LatencyDigest d = LatencyDigest::of(s);
    EXPECT_EQ(d.count, 100u);
    EXPECT_DOUBLE_EQ(d.min, 1.0);
    EXPECT_DOUBLE_EQ(d.max, 100.0);
    EXPECT_GE(d.p99, d.p50);
    EXPECT_FALSE(d.sketched);
    EXPECT_EQ(d.fingerprint, s.fingerprint());

    LatencyDigest empty = LatencyDigest::of(LatencyStat());
    EXPECT_EQ(empty.count, 0u);
}

TEST(LatencyDigest, OfSampleSetIsOrderSensitive)
{
    SampleSet fwd, rev;
    fwd.record(1.0);
    fwd.record(2.0);
    rev.record(2.0);
    rev.record(1.0);
    EXPECT_NE(LatencyDigest::of(fwd).fingerprint,
              LatencyDigest::of(rev).fingerprint);
    EXPECT_EQ(LatencyDigest::of(fwd).fingerprint,
              LatencyDigest::of(fwd).fingerprint);
}

TEST(RunArtifact, FingerprintIsStableAndSensitive)
{
    RunArtifact a = sampleArtifact();
    const uint64_t base = a.fingerprint();
    EXPECT_EQ(base, sampleArtifact().fingerprint()); // deterministic

    RunArtifact b = sampleArtifact();
    b.requests_completed = 4;
    EXPECT_NE(b.fingerprint(), base);

    RunArtifact c = sampleArtifact();
    c.groups[0].counters[0].second += 1;
    EXPECT_NE(c.fingerprint(), base);

    RunArtifact d = sampleArtifact();
    d.partition_rows[0].pool_makes += 1;
    EXPECT_NE(d.fingerprint(), base);
}

TEST(RunArtifact, FingerprintIgnoresWallClockArtifacts)
{
    RunArtifact a = sampleArtifact();
    const uint64_t base = a.fingerprint();

    // Engine internals and the pool recycle/heap split legitimately
    // differ run-to-run (and single-vs-sharded); they must not fold.
    a.engine = "par";
    a.threads_requested = 8;
    a.workers = 4;
    a.cores = 16;
    a.oversubscribed = true;
    a.worker_cpus = {0, 2, -1, 5};
    a.quanta = 123;
    a.executed_events += 1000;
    a.partition_rows[0].events += 1000;
    a.partition_rows[0].pool_recycles = 0;
    a.partition_rows[0].pool_heap_allocs = 40;
    a.partition_rows[0].pool_high_water = 40;
    a.telemetry_path = "x.jsonl";
    a.telemetry_samples = 17;
    a.has_mem = true;
    a.peak_rss_mb = 123.0;
    a.config.set("some.key", 1);
    EXPECT_EQ(a.fingerprint(), base);

    // A group explicitly marked non-deterministic is reported only.
    RunArtifact b = sampleArtifact();
    auto &g = b.addGroup("host", /*deterministic=*/false);
    g.counters = {{"cache_misses", 1234567}};
    EXPECT_EQ(b.fingerprint(), base);
}

TEST(RunArtifact, JsonCarriesEverySection)
{
    RunArtifact a = sampleArtifact();
    a.has_mem = true;
    a.peak_rss_mb = 64.0;
    a.telemetry_path = "run.telemetry.jsonl";
    a.telemetry_period_us = 1000.0;
    a.telemetry_samples = 5;
    a.config.set("incast.servers", 8);
    a.cores = 4;
    a.oversubscribed = false;
    a.worker_cpus = {0, -1};

    const std::string j = a.toJson();
    for (const char *needle :
         {"\"schema\": 1", "\"workload\": \"incast\"",
          "\"engine\":", "\"name\": \"seq\"", "\"results\":",
          "\"goodput_mbps\": 42.5", "\"requests_completed\": 3",
          "\"latencies\":", "\"iteration_us\":", "\"p99_us\":",
          "\"counters\":", "\"network\":", "\"switch_drops\": 5",
          "\"cores\": 4", "\"oversubscribed\": false",
          "\"worker_cpus\": [", "0,", "-1",
          "\"partitions\": [", "\"pool_makes\": 40", "\"mem\":",
          "\"telemetry\":", "\"samples\": 5", "\"fingerprint\": \"0x",
          "\"config\":", "\"incast.servers\": \"8\""}) {
        EXPECT_NE(j.find(needle), std::string::npos) << needle;
    }
    // The emitted fingerprint matches the computed one.
    char want[32];
    std::snprintf(want, sizeof(want), "\"0x%016llx\"",
                  static_cast<unsigned long long>(a.fingerprint()));
    EXPECT_NE(j.find(want), std::string::npos);
}

TEST(RunArtifactValidate, AcceptsACompleteWrittenArtifact)
{
    const std::string path =
        testing::TempDir() + "diablo_validate_ok.json";
    RunArtifact a = sampleArtifact();
    a.writeJson(path);

    const RunArtifact::Validation v = RunArtifact::validate(path);
    EXPECT_TRUE(v.ok) << v.error;
    EXPECT_EQ(v.status, "ok");
    char want[32];
    std::snprintf(want, sizeof(want), "0x%016llx",
                  static_cast<unsigned long long>(a.fingerprint()));
    EXPECT_EQ(v.fingerprint, want);
    std::remove(path.c_str());
}

TEST(RunArtifactValidate, AtomicWriteLeavesNoTempDebris)
{
    const std::string dir = testing::TempDir() + "diablo_atomic_dir";
    ASSERT_TRUE(mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
    const std::string path = dir + "/a.json";
    sampleArtifact().writeJson(path);
    // Overwrite in place: still valid, and the directory holds only
    // the final artifact (the temp name was renamed away).
    sampleArtifact().writeJson(path);
    EXPECT_TRUE(RunArtifact::validate(path).ok);
    DIR *d = opendir(dir.c_str());
    ASSERT_NE(d, nullptr);
    size_t entries = 0;
    while (struct dirent *e = readdir(d)) {
        if (e->d_name[0] != '.') {
            ++entries;
            EXPECT_EQ(std::string(e->d_name), "a.json");
        }
    }
    closedir(d);
    EXPECT_EQ(entries, 1u);
    std::remove(path.c_str());
    rmdir(dir.c_str());
}

TEST(RunArtifactValidate, RejectsInterruptedPartials)
{
    const std::string path =
        testing::TempDir() + "diablo_validate_partial.json";
    RunArtifact a = sampleArtifact();
    a.status = "interrupted";
    a.interrupt_cause = "SIGTERM";
    a.writeJson(path);

    const RunArtifact::Validation v = RunArtifact::validate(path);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.status, "interrupted");
    // The partial still carries its fingerprint-so-far and says why
    // it stopped.
    EXPECT_FALSE(v.fingerprint.empty());
    EXPECT_NE(v.error.find("interrupted"), std::string::npos);
    EXPECT_NE(a.toJson().find("\"interrupt_cause\": \"SIGTERM\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(RunArtifactValidate, RejectsTruncatedDebris)
{
    const std::string path =
        testing::TempDir() + "diablo_validate_trunc.json";
    RunArtifact a = sampleArtifact();
    a.writeJson(path);
    // Chop the file mid-way: simulates a non-atomic writer dying (or
    // a torn copy).  validate must flag it, not mis-parse it.
    const std::string doc = a.toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(doc.data(), 1, doc.size() / 2, f);
    std::fclose(f);

    const RunArtifact::Validation v = RunArtifact::validate(path);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.error.find("not a complete JSON object"),
              std::string::npos)
        << v.error;
    std::remove(path.c_str());
}

TEST(RunArtifactValidate, RejectsMissingFileAndWrongSchema)
{
    const RunArtifact::Validation missing =
        RunArtifact::validate(testing::TempDir() + "diablo_nope.json");
    EXPECT_FALSE(missing.ok);
    EXPECT_NE(missing.error.find("cannot read"), std::string::npos);

    const std::string path =
        testing::TempDir() + "diablo_validate_schema.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\n  \"schema\": 999,\n  \"fingerprint\": \"0x0\"\n}\n",
               f);
    std::fclose(f);
    const RunArtifact::Validation v = RunArtifact::validate(path);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.error.find("schema"), std::string::npos) << v.error;
    std::remove(path.c_str());
}

} // namespace
} // namespace analysis
} // namespace diablo
