#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/json_writer.hh"

namespace diablo {
namespace analysis {
namespace {

TEST(JsonEscape, ControlQuotesAndBackslash)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonWriter, CompactObject)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("s", "v");
    w.field("i", int64_t{-3});
    w.field("u", uint64_t{7});
    w.field("b", true);
    w.fieldHex("h", uint64_t{0xabcd});
    w.endObject();
    EXPECT_EQ(w.str(), "{\"s\":\"v\",\"i\":-3,\"u\":7,\"b\":true,"
                       "\"h\":\"0x000000000000abcd\"}");
}

TEST(JsonWriter, NestedContainers)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.beginArray("xs");
    w.value(uint64_t{1});
    w.value(uint64_t{2});
    w.endArray();
    w.beginObject("o");
    w.field("k", "v");
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"xs\":[1,2],\"o\":{\"k\":\"v\"}}");
}

TEST(JsonWriter, PrettyIndentsTwoSpaces)
{
    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.field("a", uint64_t{1});
    w.beginObject("o");
    w.field("b", uint64_t{2});
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"o\": {\n    \"b\": 2\n  }\n}");
}

TEST(JsonWriter, DoublesRoundTripAndNonFiniteIsNull)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("d", 1.5);
    w.field("nan", std::nan(""));
    w.endObject();
    EXPECT_EQ(w.str(), "{\"d\":1.5,\"nan\":null}");
}

TEST(JsonWriterDeathTest, ShapeErrorsAreFatal)
{
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.endObject();
        },
        "");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginObject();
            w.str();
        },
        "");
    EXPECT_DEATH(
        {
            JsonWriter w;
            w.beginObject();
            w.value(uint64_t{1}); // bare value inside an object
        },
        "");
}

} // namespace
} // namespace analysis
} // namespace diablo
