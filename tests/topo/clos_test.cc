#include <gtest/gtest.h>

#include "topo/clos.hh"

namespace diablo {
namespace topo {
namespace {

ClosParams
smallParams()
{
    ClosParams p;
    p.servers_per_rack = 4;
    p.racks_per_array = 3;
    p.num_arrays = 2;
    return p;
}

TEST(ClosNetwork, Dimensions)
{
    Simulator sim;
    ClosNetwork net(sim, smallParams());
    EXPECT_EQ(net.totalServers(), 24u);
    EXPECT_EQ(net.numRackSwitches(), 6u);
    EXPECT_EQ(net.numArraySwitches(), 2u);
    EXPECT_TRUE(net.hasDcSwitch());
}

TEST(ClosNetwork, SingleRackHasOnlyTor)
{
    Simulator sim;
    ClosParams p;
    p.servers_per_rack = 16;
    p.racks_per_array = 1;
    p.num_arrays = 1;
    ClosNetwork net(sim, p);
    EXPECT_EQ(net.numRackSwitches(), 1u);
    EXPECT_EQ(net.numArraySwitches(), 0u);
    EXPECT_FALSE(net.hasDcSwitch());
    // ToR has exactly 16 ports (no uplink).
    EXPECT_EQ(net.rackSwitch(0).params().num_ports, 16u);
}

TEST(ClosNetwork, SingleArrayHasNoDcSwitch)
{
    Simulator sim;
    ClosParams p = smallParams();
    p.num_arrays = 1;
    ClosNetwork net(sim, p);
    EXPECT_EQ(net.numArraySwitches(), 1u);
    EXPECT_FALSE(net.hasDcSwitch());
    // Array switch has 3 ports (no uplink); ToR has 4+1.
    EXPECT_EQ(net.arraySwitch(0).params().num_ports, 3u);
    EXPECT_EQ(net.rackSwitch(0).params().num_ports, 5u);
}

TEST(ClosNetwork, LayoutHelpers)
{
    Simulator sim;
    ClosNetwork net(sim, smallParams()); // 4 per rack, 3 racks, 2 arrays
    EXPECT_EQ(net.rackOf(0), 0u);
    EXPECT_EQ(net.rackOf(3), 0u);
    EXPECT_EQ(net.rackOf(4), 1u);
    EXPECT_EQ(net.rackOf(23), 5u);
    EXPECT_EQ(net.arrayOf(11), 0u);
    EXPECT_EQ(net.arrayOf(12), 1u);
    EXPECT_EQ(net.indexInRack(6), 2u);
}

TEST(ClosNetwork, RouteSameRack)
{
    Simulator sim;
    ClosNetwork net(sim, smallParams());
    net::SourceRoute r = net.route(0, 2);
    EXPECT_EQ(r.hops(), 1u);
    EXPECT_EQ(r.hop(), 2);
}

TEST(ClosNetwork, RouteSameArray)
{
    Simulator sim;
    ClosNetwork net(sim, smallParams());
    // node 1 (rack 0) -> node 9 (rack 2, idx 1), same array 0.
    net::SourceRoute r = net.route(1, 9);
    EXPECT_EQ(r.hops(), 3u);
    EXPECT_EQ(r.hop(), 4); // ToR uplink port = servers_per_rack
    r.advance();
    EXPECT_EQ(r.hop(), 2); // array switch downlink to rack 2
    r.advance();
    EXPECT_EQ(r.hop(), 1); // ToR port of dst server
}

TEST(ClosNetwork, RouteCrossArray)
{
    Simulator sim;
    ClosNetwork net(sim, smallParams());
    // node 0 (array 0) -> node 17 (array 1, rack 4, local rack 1, idx 1).
    net::SourceRoute r = net.route(0, 17);
    EXPECT_EQ(r.hops(), 5u);
    EXPECT_EQ(r.hop(), 4); // ToR uplink
    r.advance();
    EXPECT_EQ(r.hop(), 3); // array uplink port = racks_per_array
    r.advance();
    EXPECT_EQ(r.hop(), 1); // DC switch port toward array 1
    r.advance();
    EXPECT_EQ(r.hop(), 1); // array 1 downlink to local rack 1
    r.advance();
    EXPECT_EQ(r.hop(), 1); // ToR port of dst
}

TEST(ClosNetwork, HopClasses)
{
    Simulator sim;
    ClosNetwork net(sim, smallParams());
    EXPECT_EQ(net.hopClass(0, 3), HopClass::Local);
    EXPECT_EQ(net.hopClass(0, 8), HopClass::OneHop);
    EXPECT_EQ(net.hopClass(0, 20), HopClass::TwoHop);
    EXPECT_EQ(hopClassName(HopClass::TwoHop), std::string("2-hop"));
}

TEST(ClosNetwork, RouteToSelfPanics)
{
    Simulator sim;
    ClosNetwork net(sim, smallParams());
    EXPECT_DEATH(net.route(5, 5), "route to self");
}

TEST(ClosParams, FromConfig)
{
    Config cfg;
    cfg.set("topo.servers_per_rack", 31);
    cfg.set("topo.racks_per_array", 16);
    cfg.set("topo.num_arrays", 4);
    cfg.set("topo.switch_model", "output_queue");
    cfg.set("topo.rack.port_gbps", 10.0);
    ClosParams p = ClosParams::fromConfig(cfg, "topo.");
    EXPECT_EQ(p.totalServers(), 1984u);
    EXPECT_EQ(p.switch_model, SwitchModelKind::OutputQueue);
    EXPECT_DOUBLE_EQ(p.rack_sw.port_bw.asGbps(), 10.0);
}

} // namespace
} // namespace topo
} // namespace diablo
