#include <gtest/gtest.h>

#include <set>

#include "topo/clos.hh"

namespace diablo {
namespace topo {
namespace {

using namespace diablo::time_literals;

ClosParams
planedParams()
{
    ClosParams p;
    p.servers_per_rack = 4;
    p.racks_per_array = 3;
    p.num_arrays = 1;
    p.uplink_planes = 2;
    return p;
}

/** First hop of a cross-rack route is the ToR uplink port
 *  servers_per_rack + plane, which identifies the chosen plane. */
uint32_t
chosenPlane(const ClosNetwork &net, net::NodeId src, net::NodeId dst)
{
    net::SourceRoute r = net.route(src, dst);
    const uint32_t first = static_cast<uint32_t>(r.hop());
    EXPECT_GE(first, net.params().servers_per_rack);
    return first - net.params().servers_per_rack;
}

/** A cross-rack (src, dst) pair whose ECMP hash prefers @p plane. */
std::pair<net::NodeId, net::NodeId>
flowOnPlane(const ClosNetwork &net, uint32_t plane)
{
    const uint32_t spr = net.params().servers_per_rack;
    for (net::NodeId s = 0; s < spr; ++s) {
        for (net::NodeId d = spr; d < net.totalServers(); ++d) {
            if (net.preferredPlane(s, d) == plane) {
                return {s, d};
            }
        }
    }
    ADD_FAILURE() << "no flow prefers plane " << plane;
    return {0, spr};
}

TEST(ClosFault, PlanedTopologyShape)
{
    Simulator sim;
    ClosNetwork net(sim, planedParams());
    // The array level is replicated per plane; ToRs get one uplink each.
    EXPECT_EQ(net.planes(), 2u);
    EXPECT_EQ(net.numArraySwitches(), 2u);
    EXPECT_EQ(net.numRackSwitches(), 3u);
    EXPECT_EQ(net.rackSwitch(0).params().num_ports, 4u + 2u);
    EXPECT_EQ(net.arraySwitch(0).params().num_ports, 3u);
}

TEST(ClosFault, EcmpSpreadsFlowsAcrossPlanes)
{
    Simulator sim;
    ClosNetwork net(sim, planedParams());
    std::set<uint32_t> used;
    for (net::NodeId s = 0; s < 4; ++s) {
        for (net::NodeId d = 4; d < net.totalServers(); ++d) {
            const uint32_t p = net.preferredPlane(s, d);
            EXPECT_LT(p, net.planes());
            EXPECT_EQ(chosenPlane(net, s, d), p); // all planes live
            used.insert(p);
        }
    }
    EXPECT_EQ(used.size(), 2u); // the hash actually spreads
}

TEST(ClosFault, TrunkDownReroutesOntoSurvivingPlane)
{
    Simulator sim;
    ClosNetwork net(sim, planedParams());
    auto [src, dst] = flowOnPlane(net, 0);

    net.scheduleTrunkState(1_us, net.rackOf(src), /*plane=*/0,
                           /*up=*/false);
    sim.run();

    EXPECT_FALSE(net.trunkUpLink(net.rackOf(src), 0).isUp());
    EXPECT_FALSE(net.trunkDownLink(net.rackOf(src), 0).isUp());

    const uint64_t before = net.rerouteCount();
    EXPECT_EQ(chosenPlane(net, src, dst), 1u);
    EXPECT_EQ(net.preferredPlane(src, dst), 0u); // the hash is unchanged
    EXPECT_GT(net.rerouteCount(), before);

    // Restore: the flow rehashes back onto its preferred plane.
    net.scheduleTrunkState(2_us, net.rackOf(src), 0, true);
    sim.run();
    EXPECT_TRUE(net.trunkUpLink(net.rackOf(src), 0).isUp());
    EXPECT_EQ(chosenPlane(net, src, dst), 0u);
}

TEST(ClosFault, ArraySwitchCrashReroutesEveryRack)
{
    Simulator sim;
    ClosNetwork net(sim, planedParams());

    net.scheduleArraySwitchState(1_us, /*array=*/0, /*plane=*/0,
                                 /*up=*/false);
    sim.run();

    // Every rack's plane-0 trunk died with the switch; all traffic now
    // takes plane 1 regardless of hash preference.
    for (uint32_t rack = 0; rack < net.numRacks(); ++rack) {
        EXPECT_FALSE(net.trunkUpLink(rack, 0).isUp());
    }
    for (net::NodeId s = 0; s < 4; ++s) {
        for (net::NodeId d = 4; d < net.totalServers(); ++d) {
            EXPECT_EQ(chosenPlane(net, s, d), 1u);
        }
    }
}

TEST(ClosFault, NoLivePlaneDegradesWithoutPanicking)
{
    Simulator sim;
    ClosNetwork net(sim, planedParams());
    auto [src, dst] = flowOnPlane(net, 0);
    const uint32_t rack = net.rackOf(src);

    net.scheduleTrunkState(1_us, rack, 0, false);
    net.scheduleTrunkState(1_us, rack, 1, false);
    sim.run();

    // Routing falls back to the hash-preferred plane; the downed trunk
    // accounts the drops instead of the fabric panicking.
    EXPECT_EQ(chosenPlane(net, src, dst), net.preferredPlane(src, dst));
    EXPECT_EQ(net.totalLinkDownDrops(), 0u); // nothing transmitted yet
}

TEST(ClosFault, TrunkBrownoutDegradesAndRepairs)
{
    Simulator sim;
    ClosNetwork net(sim, planedParams());

    net.scheduleTrunkDegrade(1_us, /*rack=*/1, /*plane=*/1,
                             /*loss_prob=*/0.25, /*extra=*/3_us,
                             /*seed=*/99);
    sim.run();
    EXPECT_TRUE(net.trunkUpLink(1, 1).degraded());
    EXPECT_TRUE(net.trunkDownLink(1, 1).degraded());
    // A browned-out trunk is degraded, not dead: routing still uses it.
    EXPECT_TRUE(net.trunkUpLink(1, 1).isUp());

    net.scheduleTrunkRepair(5_us, 1, 1);
    sim.run();
    EXPECT_FALSE(net.trunkUpLink(1, 1).degraded());
    EXPECT_FALSE(net.trunkDownLink(1, 1).degraded());
}

} // namespace
} // namespace topo
} // namespace diablo
