#include <gtest/gtest.h>

#include "fame/cost_model.hh"
#include "fame/perf_model.hh"

namespace diablo {
namespace fame {
namespace {

TEST(CostModel, PrototypeCostsAbout140k)
{
    // "Each BEE3 cost $15K, and the total cost of a 9-board system was
    // about $140K."
    CostModel m;
    DiabloCostParams p = DiabloCostParams::bee3Prototype();
    // 2,976-node prototype: 6 rack boards + 3 switch boards = 9 boards.
    EXPECT_EQ(m.boardsNeeded(2976, p), 6u); // rack boards alone
    double total = 9 * p.board_cost_usd + p.infrastructure_usd;
    EXPECT_NEAR(total, 140000, 1000);
}

TEST(CostModel, Projected32kNodeSystemCosts150k)
{
    // "a 32,000-node DIABLO system using just 32 FPGAs and an overall
    // cost of $150K including DRAM".
    CostModel m;
    DiabloCostParams p = DiabloCostParams::board2015();
    EXPECT_EQ(m.boardsNeeded(32000, p), 32u);
    EXPECT_NEAR(m.diabloCapexUsd(32000, p), 150000, 1000);
}

TEST(CostModel, RealArrayCostsMillions)
{
    // "An equivalent real WSC array would cost around $36M in CAPEX and
    // $800K in OPEX/month" — for the 11,904-server scaled system.
    CostModel m;
    WscCostParams w;
    EXPECT_NEAR(m.wscCapexUsd(11904, w), 36.0e6, 0.1e6);
    EXPECT_NEAR(m.wscOpexPerMonthUsd(11904, w), 800e3, 5e3);
}

TEST(CostModel, DiabloIsOrdersOfMagnitudeCheaper)
{
    CostModel m;
    const uint32_t nodes = 11904;
    double diablo = m.diabloCapexUsd(nodes, DiabloCostParams::board2015());
    double wsc = m.wscCapexUsd(nodes, WscCostParams{});
    EXPECT_GT(wsc / diablo, 100.0);
}

TEST(PerfModel, FiftyMinutesPerTargetSecondAt4GHz)
{
    // §5: "When simulating 4 GHz servers ... around 50 minutes of
    // simulation wall-clock time are required for one second of target
    // time."
    PerfModel m(HostPlatform::bee3());
    double slow = m.slowdown(4.0);
    double minutes =
        m.wallClockFor(SimTime::sec(1), 4.0).asSeconds() / 60.0;
    EXPECT_NEAR(minutes, 50.0, 5.0);
    EXPECT_NEAR(slow, 3000, 300);
}

TEST(PerfModel, SlowdownBandForSlowerTargets)
{
    // Abstract: "overall simulation slowdown of between 250-1000x" for
    // the lower-clocked targets RAMP Gold-class systems model.
    PerfModel m(HostPlatform::bee3());
    EXPECT_GT(m.slowdown(0.4), 250.0);
    EXPECT_LT(m.slowdown(1.3), 1000.0);
}

TEST(PerfModel, SlowdownScalesWithTargetClock)
{
    PerfModel m(HostPlatform::bee3());
    EXPECT_DOUBLE_EQ(m.slowdown(4.0), 2.0 * m.slowdown(2.0));
}

TEST(PerfModel, SoftwareSimulatorTakesWeeks)
{
    // §5: "software simulation would take almost two weeks" for the
    // ~10 seconds of whole-array target time DIABLO simulates in hours.
    // A fast functional-plus-timing software simulator retires ~30 host
    // instructions per simulated target cycle; a 3,000-node array
    // serialized onto one host is then 3,000 x 40 = 120,000x slowdown.
    double sw = PerfModel::softwareSlowdown(4.0, 3.0, 30) * 3000;
    double days_for_10s = sw * 10 / 86400.0;
    EXPECT_GT(days_for_10s, 10.0); // ~two weeks
    EXPECT_LT(days_for_10s, 25.0);

    // And DIABLO does the same 10 target seconds in hours.
    PerfModel m(HostPlatform::bee3());
    double hours = m.wallClockFor(SimTime::sec(10), 4.0).asSeconds() /
                   3600.0;
    EXPECT_GT(hours, 2.0);
    EXPECT_LT(hours, 12.0);
}

} // namespace
} // namespace fame
} // namespace diablo
