#include <gtest/gtest.h>

#include "fame/resource_model.hh"

namespace diablo {
namespace fame {
namespace {

TEST(ResourceModel, ReproducesTable2Exactly)
{
    ResourceModel m;
    const HostConfig cfg = HostConfig::rackFpga();

    Resources srv = m.serverModels(cfg.server_pipelines,
                                   cfg.threads_per_pipeline);
    EXPECT_DOUBLE_EQ(srv.lut, 28445);
    EXPECT_DOUBLE_EQ(srv.reg, 37463);
    EXPECT_DOUBLE_EQ(srv.bram, 96);
    EXPECT_DOUBLE_EQ(srv.lutram, 6584);

    Resources nic = m.nicModels(cfg.nic_models);
    EXPECT_DOUBLE_EQ(nic.lut, 9467);
    EXPECT_DOUBLE_EQ(nic.reg, 4785);
    EXPECT_DOUBLE_EQ(nic.bram, 10);
    EXPECT_DOUBLE_EQ(nic.lutram, 752);

    Resources sw = m.switchModels(cfg.switch_models, cfg.switch_ports);
    EXPECT_DOUBLE_EQ(sw.lut, 4511);
    EXPECT_DOUBLE_EQ(sw.reg, 3482);
    EXPECT_DOUBLE_EQ(sw.bram, 52);
    EXPECT_DOUBLE_EQ(sw.lutram, 345);

    Resources misc = m.miscellaneous();
    EXPECT_DOUBLE_EQ(misc.lut, 3395);
    EXPECT_DOUBLE_EQ(misc.reg, 16052);

    Resources total = m.estimate(cfg);
    EXPECT_DOUBLE_EQ(total.lut, 45818);
    // Note: the paper's Table 2 lists a register total of 62,811, but
    // its own component rows sum to 61,782 (37,463 + 4,785 + 3,482 +
    // 16,052); the model reproduces the component rows, so the total is
    // the consistent column sum.
    EXPECT_DOUBLE_EQ(total.reg, 61782);
    EXPECT_DOUBLE_EQ(total.bram, 189);
    EXPECT_DOUBLE_EQ(total.lutram, 12739);
}

TEST(ResourceModel, RackFpgaNearlyFillsTheLx155t)
{
    // The paper: "the device is almost fully utilized with 95% of logic
    // slices occupied".  Raw LUT counts sit lower (routing/packing
    // inflate slice occupancy); the scarcest raw resource should still
    // be the dominant one and leave little headroom for more threads.
    ResourceModel m;
    const FpgaDevice dev = FpgaDevice::virtex5Lx155t();
    const double u = m.worstUtilization(HostConfig::rackFpga(), dev);
    EXPECT_GT(u, 0.55);
    EXPECT_LT(u, 1.0);

    // Scaling headroom: fewer than 2x the threads fit.
    const uint32_t max_threads =
        m.maxThreadsThatFit(HostConfig::rackFpga(), dev);
    EXPECT_GE(max_threads, 32u);
    EXPECT_LT(max_threads, 64u);
}

TEST(ResourceModel, ResourcesScaleWithThreads)
{
    ResourceModel m;
    HostConfig small = HostConfig::rackFpga();
    small.threads_per_pipeline = 16;
    HostConfig big = HostConfig::rackFpga();
    big.threads_per_pipeline = 64;
    EXPECT_LT(m.estimate(small).lut, m.estimate(big).lut);
    EXPECT_LT(m.estimate(small).reg, m.estimate(big).reg);
}

TEST(ResourceModel, SwitchFpgaIsCutDown)
{
    // "The Switch FPGA is just a cut-down version of the Rack FPGA".
    ResourceModel m;
    Resources rack = m.estimate(HostConfig::rackFpga());
    Resources sw = m.estimate(HostConfig::switchFpga());
    EXPECT_LT(sw.lut, rack.lut);
    EXPECT_LT(sw.reg, rack.reg);
}

TEST(ResourceModel, ModernFpgaFitsManyMoreThreads)
{
    // The 2015 scaling projection rests on 20 nm devices having ~10x
    // the capacity.
    ResourceModel m;
    const uint32_t old_fit = m.maxThreadsThatFit(
        HostConfig::rackFpga(), FpgaDevice::virtex5Lx155t());
    const uint32_t new_fit = m.maxThreadsThatFit(
        HostConfig::rackFpga(), FpgaDevice::ultrascale20nm());
    EXPECT_GT(new_fit, 5 * old_fit);
}

} // namespace
} // namespace fame
} // namespace diablo
