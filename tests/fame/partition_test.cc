#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/random.hh"
#include "fame/partition.hh"

namespace diablo {
namespace fame {
namespace {

using namespace diablo::time_literals;

/**
 * Synthetic distributed workload: each partition hosts a "node" that,
 * upon receiving a token, does deterministic local work and forwards
 * tokens to its neighbours after a per-hop latency.  The global
 * checksum is order-sensitive, so any divergence in event interleaving
 * between engines changes it.
 */
struct RingWorkload {
    explicit RingWorkload(PartitionSet &ps, SimTime hop_latency,
                          int fanout = 2)
        : ps(ps)
    {
        const size_t n = ps.size();
        counters.assign(n, 0);
        checksums.assign(n, 0);
        channels.resize(n);
        for (size_t i = 0; i < n; ++i) {
            channels[i] = &ps.makeChannel(i, (i + 1) % n, hop_latency);
        }
        this->fanout = fanout;
        this->hop = hop_latency;
    }

    void
    inject(size_t part, uint64_t token, int ttl)
    {
        ps.partition(part).schedule(SimTime(), [this, part, token, ttl] {
            onToken(part, token, ttl);
        });
    }

    void
    onToken(size_t part, uint64_t token, int ttl)
    {
        Simulator &sim = ps.partition(part);
        counters[part]++;
        // Order-sensitive mixing of arrival time and token value.
        checksums[part] =
            checksums[part] * 1000003 +
            static_cast<uint64_t>(sim.now().toPs()) + token;
        if (ttl <= 0) {
            return;
        }
        for (int f = 0; f < fanout; ++f) {
            const uint64_t child = token * 7 + static_cast<uint64_t>(f);
            const SimTime when = sim.now() + hop + SimTime::ns(child % 97);
            const size_t dst = (part + 1) % ps.size();
            channels[part]->post(when, [this, dst, child, ttl] {
                onToken(dst, child, ttl - 1);
            });
        }
    }

    uint64_t
    globalChecksum() const
    {
        uint64_t h = 0;
        for (size_t i = 0; i < checksums.size(); ++i) {
            h = h * 16777619 + checksums[i] + counters[i];
        }
        return h;
    }

    PartitionSet &ps;
    std::vector<PartitionSet::Channel *> channels;
    std::vector<uint64_t> counters;
    std::vector<uint64_t> checksums;
    int fanout = 2;
    SimTime hop;
};

uint64_t
runWorkload(size_t parts, bool parallel, int ttl)
{
    PartitionSet ps(parts);
    RingWorkload w(ps, 1_us);
    for (size_t i = 0; i < parts; ++i) {
        w.inject(i, 1000 + i, ttl);
    }
    if (parallel) {
        ps.runParallel(1_sec);
    } else {
        ps.runSequential(1_sec);
    }
    return w.globalChecksum();
}

TEST(PartitionSet, QuantumIsMinChannelLatency)
{
    PartitionSet ps(3);
    ps.makeChannel(0, 1, 5_us);
    ps.makeChannel(1, 2, 2_us);
    ps.makeChannel(2, 0, 9_us);
    EXPECT_EQ(ps.quantum(), 2_us);
}

TEST(PartitionSet, SequentialMatchesParallelExactly)
{
    // The determinism property DIABLO guarantees across FPGAs: the
    // distributed engine must produce bit-identical results.
    for (size_t parts : {2u, 4u, 7u}) {
        uint64_t seq = runWorkload(parts, false, 12);
        uint64_t par = runWorkload(parts, true, 12);
        EXPECT_EQ(seq, par) << parts << " partitions";
    }
}

TEST(PartitionSet, ParallelIsRepeatable)
{
    uint64_t a = runWorkload(4, true, 12);
    uint64_t b = runWorkload(4, true, 12);
    EXPECT_EQ(a, b);
}

TEST(PartitionSet, WorkloadActuallyCrossesPartitions)
{
    PartitionSet ps(4);
    RingWorkload w(ps, 1_us);
    w.inject(0, 5, 6);
    ps.runSequential(1_sec);
    // Tokens hop 0 -> 1 -> 2 -> 3 ...; every partition saw traffic.
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_GT(w.counters[i], 0u) << "partition " << i;
    }
    // Fanout 2, ttl 6: 1 + 2 + 4 + ... + 64 = 127 token arrivals.
    uint64_t total = std::accumulate(w.counters.begin(), w.counters.end(),
                                     uint64_t{0});
    EXPECT_EQ(total, 127u);
}

TEST(PartitionSet, CausalityViolationPanics)
{
    PartitionSet ps(2);
    auto &ch = ps.makeChannel(0, 1, 10_us);
    ps.partition(0).schedule(5_us, [&] {
        // Posting into the past of the destination (latency ignored).
        ch.post(SimTime::us(1), [] {});
    });
    // Let partition 1 advance past 1 us first.
    ps.partition(1).schedule(8_us, [] {});
    EXPECT_DEATH(ps.runSequential(SimTime::us(100)),
                 "causality violation");
}

TEST(PartitionSet, PostBelowLookaheadPanicsAtPostTimeNamingChannel)
{
    // The conservative contract is validated when the message is
    // posted, against the *source* clock, not later at drain time —
    // and the diagnostic names the offending channel.
    PartitionSet ps(2);
    auto &ch = ps.makeChannel(0, 1, 10_us, "tor0.up");
    ps.partition(0).schedule(5_us, [&] {
        // when = now + 3us < now + 10us lookahead: lies about latency
        // even though it is in the destination's future.
        ch.post(SimTime::us(8), [] {});
    });
    EXPECT_DEATH(ps.runSequential(SimTime::us(100)),
                 "channel tor0.up.*violates conservative contract");
}

TEST(PartitionSet, PostExactlyAtLookaheadIsAccepted)
{
    // when == now + min_latency is the tightest legal post (a
    // cut-through ChannelLink hits this bound exactly).
    PartitionSet ps(2);
    auto &ch = ps.makeChannel(0, 1, 10_us);
    int delivered = 0;
    ps.partition(0).schedule(5_us, [&] {
        ch.post(SimTime::us(15), [&delivered] { ++delivered; });
    });
    ps.runSequential(SimTime::us(100));
    EXPECT_EQ(delivered, 1);
}

TEST(PartitionSet, NoChannelQuantumDefaultAndOverride)
{
    PartitionSet ps(2); // no channels: explicit, documented default
    EXPECT_EQ(ps.quantum(), PartitionSet::kNoChannelQuantum);
    ps.setQuantum(SimTime::us(10));
    EXPECT_EQ(ps.quantum(), SimTime::us(10));
    ps.clearQuantum(); // explicit clear path, distinct from setQuantum
    EXPECT_EQ(ps.quantum(), PartitionSet::kNoChannelQuantum);
}

TEST(PartitionSet, NonPositiveQuantumIsRejected)
{
    // A zero quantum used to be silently indistinguishable from the
    // pass-SimTime()-to-clear idiom; both non-positive cases now die.
    PartitionSet ps(2);
    EXPECT_DEATH(ps.setQuantum(SimTime()),
                 "quantum must be strictly positive");
    EXPECT_DEATH(ps.setQuantum(SimTime::us(-1)),
                 "quantum must be strictly positive");
}

TEST(PartitionSet, QuantumOverrideExceedingLookaheadPanics)
{
    PartitionSet ps(2);
    ps.makeChannel(0, 1, 2_us);
    ps.setQuantum(5_us); // larger than the 2 us lookahead
    EXPECT_DEATH(ps.runSequential(SimTime::us(100)),
                 "exceeds minimum channel latency");
}

TEST(PartitionSet, QuantumSkippingPreservesDeterminism)
{
    // Clustered workload — bursts at t=0 and t=50ms separated by ~50k
    // idle 1 us quanta, exactly the shape quantum skipping accelerates.
    // Sequential, parallel, and unskipped runs must agree event-for-event.
    auto run = [](bool parallel, bool skip) {
        PartitionSet ps(4);
        RingWorkload w(ps, 1_us);
        for (size_t i = 0; i < 4; ++i) {
            w.inject(i, 1 + i, 8);
        }
        for (size_t i = 0; i < 4; ++i) {
            ps.partition(i).schedule(SimTime::ms(50), [&w, i] {
                w.onToken(i, 900 + i, 8);
            });
        }
        ps.setSkipIdleQuanta(skip);
        if (parallel) {
            ps.runParallel(SimTime::ms(60));
        } else {
            ps.runSequential(SimTime::ms(60));
        }
        struct Result {
            uint64_t checksum;
            uint64_t executed;
            uint64_t quanta;
        };
        return Result{w.globalChecksum(), ps.totalExecutedEvents(),
                      ps.quantaExecuted()};
    };

    const auto seq = run(false, true);
    const auto par = run(true, true);
    EXPECT_EQ(seq.checksum, par.checksum);
    EXPECT_EQ(seq.executed, par.executed);
    EXPECT_EQ(seq.quanta, par.quanta);

    // Skipping changes wall-clock only: same results, far fewer quanta.
    const auto noskip = run(false, false);
    EXPECT_EQ(seq.checksum, noskip.checksum);
    EXPECT_EQ(seq.executed, noskip.executed);
    EXPECT_LT(seq.quanta, noskip.quanta / 100);
}

TEST(PartitionSet, IndependentPartitionsRunToHorizon)
{
    PartitionSet ps(3); // no channels
    // The three events run concurrently on different workers, so the
    // shared counter must be atomic (model state is per-partition; this
    // cross-partition counter exists only to observe the test).
    std::atomic<int> fired{0};
    for (size_t i = 0; i < 3; ++i) {
        ps.partition(i).schedule(SimTime::ms(2), [&fired] { ++fired; });
    }
    ps.runParallel(SimTime::ms(5));
    EXPECT_EQ(fired.load(), 3);
}

TEST(PartitionSet, WorkerPoolIsReusedAcrossRuns)
{
    // Repeated runParallel calls reuse the same pooled workers (a
    // sharded cluster measured in windows would otherwise spawn
    // partitions+1 threads per window) and produce the same results as
    // the equivalent sequence of sequential windows.
    auto run = [](bool parallel) {
        PartitionSet ps(4);
        RingWorkload w(ps, 1_us);
        for (size_t i = 0; i < 4; ++i) {
            w.inject(i, 1000 + i, 10);
        }
        for (int window = 1; window <= 5; ++window) {
            const SimTime until = SimTime::ms(window);
            if (parallel) {
                ps.runParallel(until);
            } else {
                ps.runSequential(until);
            }
        }
        return std::pair(w.globalChecksum(), ps.quantaExecuted());
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(PartitionSet, PerRunStatsAreDeltas)
{
    PartitionSet ps(2);
    RingWorkload w(ps, 1_us);
    w.inject(0, 7, 6);
    ps.runSequential(SimTime::ms(1));
    const uint64_t q1 = ps.lastRunQuanta();
    const uint64_t e1 = ps.lastRunTotalExecutedEvents();
    EXPECT_GT(q1, 0u);
    EXPECT_GT(e1, 0u);
    EXPECT_EQ(q1, ps.quantaExecuted());
    EXPECT_EQ(e1, ps.totalExecutedEvents());
    EXPECT_EQ(ps.lastRunExecutedEvents(0) + ps.lastRunExecutedEvents(1),
              e1);

    // Second, idle window: cumulative counters keep history, the
    // per-run deltas describe only the latest run.
    ps.runSequential(SimTime::ms(2));
    EXPECT_EQ(ps.lastRunQuanta(), ps.quantaExecuted() - q1);
    EXPECT_EQ(ps.lastRunTotalExecutedEvents(),
              ps.totalExecutedEvents() - e1);

    ps.resetStats();
    EXPECT_EQ(ps.quantaExecuted(), 0u);
    EXPECT_EQ(ps.lastRunQuanta(), 0u);
    EXPECT_EQ(ps.lastRunTotalExecutedEvents(), 0u);
}

TEST(PartitionSet, FusedWorkerCountsAreBitIdentical)
{
    // Partition fusion: the same 6-partition workload must produce the
    // same checksum, event count, and quantum count for every worker
    // cap — 1 (degenerate fusion, no barrier), fewer workers than
    // partitions, one per partition, and oversubscribed.  0 is the
    // hardware default.
    auto run = [](size_t threads) {
        PartitionSet ps(6);
        ps.setParallelism(threads);
        RingWorkload w(ps, 1_us);
        for (size_t i = 0; i < 6; ++i) {
            w.inject(i, 1000 + i, 10);
        }
        ps.runParallel(SimTime::ms(5));
        struct Result {
            uint64_t checksum;
            uint64_t executed;
            uint64_t quanta;
        };
        return Result{w.globalChecksum(), ps.totalExecutedEvents(),
                      ps.quantaExecuted()};
    };
    const auto ref = run(1);
    EXPECT_GT(ref.executed, 0u);
    for (size_t threads : {2u, 3u, 6u, 12u, 0u}) {
        const auto r = run(threads);
        EXPECT_EQ(ref.checksum, r.checksum) << threads << " threads";
        EXPECT_EQ(ref.executed, r.executed) << threads << " threads";
        EXPECT_EQ(ref.quanta, r.quanta) << threads << " threads";
    }
}

TEST(PartitionSet, FusionGroupsColocateWhenBalanced)
{
    // 8 equal-weight partitions in 4 groups of 2 on 4 workers: the
    // group-aware LPT must keep each group whole (every pair shares a
    // worker) and still balance (the 4 groups land on 4 distinct
    // workers).
    PartitionSet ps(8);
    ps.setParallelism(4);
    for (size_t i = 0; i < 8; ++i) {
        ps.setPartitionGroup(i, static_cast<int64_t>(i / 2));
        ps.partition(i).schedule(SimTime::us(1), [] {});
    }
    ps.runParallel(SimTime::us(10));
    EXPECT_EQ(ps.lastRunWorkers(), 4u);
    std::vector<bool> seen(4, false);
    for (size_t g = 0; g < 4; ++g) {
        const uint32_t w = ps.workerOfPartition(2 * g);
        EXPECT_EQ(w, ps.workerOfPartition(2 * g + 1)) << "group " << g;
        EXPECT_FALSE(seen[w]) << "two groups on worker " << w;
        seen[w] = true;
    }
}

TEST(PartitionSet, OversizedFusionGroupSpills)
{
    // One group holding every partition cannot stay together on 2
    // workers without a 2x imbalance; the fusion must spill it to
    // partition-level placement and use both workers.
    PartitionSet ps(6);
    ps.setParallelism(2);
    for (size_t i = 0; i < 6; ++i) {
        ps.setPartitionGroup(i, 0);
        ps.partition(i).schedule(SimTime::us(1), [] {});
    }
    ps.runParallel(SimTime::us(10));
    EXPECT_EQ(ps.lastRunWorkers(), 2u);
    bool used[2] = {false, false};
    for (size_t i = 0; i < 6; ++i) {
        used[ps.workerOfPartition(i)] = true;
    }
    EXPECT_TRUE(used[0]);
    EXPECT_TRUE(used[1]);
}

TEST(PartitionSet, FusionGroupsPreserveBitIdentity)
{
    // Grouping is a placement hint only: the grouped parallel run must
    // produce the same order-sensitive checksum as the ungrouped
    // sequential reference.
    auto run = [](bool parallel, bool grouped) {
        PartitionSet ps(8);
        ps.setParallelism(3);
        if (grouped) {
            for (size_t i = 0; i < 8; ++i) {
                ps.setPartitionGroup(i, static_cast<int64_t>(i / 3));
            }
        }
        RingWorkload w(ps, 1_us);
        for (size_t i = 0; i < 8; ++i) {
            w.inject(i, 1000 + i, 10);
        }
        if (parallel) {
            ps.runParallel(SimTime::ms(5));
        } else {
            ps.runSequential(SimTime::ms(5));
        }
        return w.globalChecksum();
    };
    const uint64_t ref = run(false, false);
    EXPECT_EQ(ref, run(true, false));
    EXPECT_EQ(ref, run(true, true));
    EXPECT_EQ(ref, run(false, true));
}

TEST(PartitionSet, FusionCapsWorkersAtPartitionCount)
{
    PartitionSet ps(3);
    ps.makeChannel(0, 1, 1_us);
    ps.partition(0).schedule(SimTime::us(1), [] {});
    // A request above the partition count is clamped at set time (a
    // 64-worker cap on a 3-partition set could never be honored), so
    // parallelism() reports what a run will actually use.
    ps.setParallelism(64);
    EXPECT_EQ(ps.parallelism(), 3u);
    ps.runParallel(SimTime::us(10));
    EXPECT_EQ(ps.lastRunWorkers(), 3u);
    ps.setParallelism(2);
    ps.runParallel(SimTime::us(20));
    EXPECT_EQ(ps.lastRunWorkers(), 2u);
}

TEST(PartitionSet, QuantumCacheInvalidatedByLaterChannel)
{
    // Regression for the cached quantum: an override validated against
    // the channels present at first quantum() call must be re-checked
    // when a later channel tightens the minimum lookahead below it.
    PartitionSet ps(3);
    ps.makeChannel(0, 1, 10_us);
    ps.setQuantum(8_us);
    EXPECT_EQ(ps.quantum(), 8_us); // cache primed with override valid
    ps.makeChannel(1, 2, 2_us);    // lookahead now below the override
    EXPECT_DEATH(ps.runSequential(SimTime::us(100)),
                 "exceeds minimum channel latency");
}

TEST(PartitionSet, QuantumCacheInvalidatedBySetAndClear)
{
    PartitionSet ps(2);
    ps.makeChannel(0, 1, 10_us);
    EXPECT_EQ(ps.quantum(), 10_us);
    ps.setQuantum(4_us);
    EXPECT_EQ(ps.quantum(), 4_us);
    ps.clearQuantum();
    EXPECT_EQ(ps.quantum(), 10_us);
    ps.makeChannel(1, 0, 3_us);
    EXPECT_EQ(ps.quantum(), 3_us);
}

TEST(PartitionSet, RandomizedTopologyStressSeqParIdentical)
{
    // Randomized mini-fuzz over topology shape and traffic pattern:
    // random partition counts, per-channel latencies, bursty injection
    // times, and fanouts.  For each sampled topology the sequential
    // reference and the parallel engine at several worker caps must
    // stay bit-identical.  The generator is seeded, so a failure here
    // reproduces deterministically.
    Rng rng(0xD1AB10);
    for (int trial = 0; trial < 8; ++trial) {
        const size_t parts = rng.uniformInt(2, 6);
        const SimTime hop = SimTime::ns(
            static_cast<int64_t>(rng.uniformInt(300, 5000)));
        const int fanout = static_cast<int>(rng.uniformInt(1, 3));
        const int ttl = static_cast<int>(rng.uniformInt(4, 9));
        const uint32_t bursts = static_cast<uint32_t>(
            rng.uniformInt(1, 3));
        std::vector<uint64_t> burst_at_us;
        for (uint32_t b = 0; b < bursts; ++b) {
            burst_at_us.push_back(rng.uniformInt(0, 3000));
        }

        // Half the trials also attach random fusion groups — placement
        // hints must never perturb results, whatever the shape.
        const bool grouped = rng.uniformInt(0, 1) == 1;
        std::vector<int64_t> group_of(parts, 0);
        for (size_t i = 0; i < parts; ++i) {
            group_of[i] = grouped
                              ? static_cast<int64_t>(rng.uniformInt(0, 2))
                              : static_cast<int64_t>(i);
        }

        auto run = [&](bool parallel, size_t threads) {
            PartitionSet ps(parts);
            ps.setParallelism(threads);
            for (size_t i = 0; i < parts; ++i) {
                ps.setPartitionGroup(i, group_of[i]);
            }
            RingWorkload w(ps, hop, fanout);
            for (uint64_t at : burst_at_us) {
                for (size_t i = 0; i < parts; ++i) {
                    ps.partition(i).schedule(
                        SimTime::us(static_cast<int64_t>(at)),
                        [&w, i, at, ttl] {
                            w.onToken(i, at + i, ttl);
                        });
                }
            }
            if (parallel) {
                ps.runParallel(SimTime::ms(10));
            } else {
                ps.runSequential(SimTime::ms(10));
            }
            return std::pair(w.globalChecksum(),
                             ps.totalExecutedEvents());
        };

        const auto seq = run(false, 1);
        EXPECT_GT(seq.second, 0u) << "trial " << trial;
        for (size_t threads : {1u, 2u, 3u, 8u, 0u}) {
            const auto par = run(true, threads);
            EXPECT_EQ(seq, par)
                << "trial " << trial << ", parts=" << parts
                << ", threads=" << threads;
        }
    }
}

TEST(PartitionSet, WorkerLanesAreCacheLineIsolated)
{
    // Two workers' hot per-quantum state (published minima, horizon
    // caches, dirty lists, arenas) must never share a cacheline.
    EXPECT_EQ(PartitionSet::workerLaneAlignment(), 64u);
    EXPECT_EQ(PartitionSet::workerLaneStride() % 64u, 0u);
}

TEST(PartitionSet, InvalidExplicitPinningIsFatal)
{
    // A cpu id outside the topology is a config error, not a silent
    // no-op: the run would quietly lose its placement guarantee.
    PartitionSet ps(2);
    ps.setCpuTopology(CpuTopology::flat(2)); // cpus {0, 1}
    EXPECT_DEATH(ps.setWorkerCpus({0, 7}), "not an online CPU");
}

TEST(PartitionSet, ExplicitPinningIsReportedPerRun)
{
    PartitionSet ps(4);
    ps.setParallelism(2);
    const CpuTopology &host = CpuTopology::host();
    const int cpu = host.cpus.front();
    // Both workers on the first online cpu: valid on any host, and the
    // run artifact must report exactly what was applied.
    ps.setWorkerCpus({cpu, cpu});
    for (size_t i = 0; i < 4; ++i) {
        ps.partition(i).schedule(SimTime::us(1), [] {});
    }
    ps.runParallel(SimTime::us(10));
    ASSERT_EQ(ps.lastRunWorkerCpus().size(), 2u);
    EXPECT_EQ(ps.lastRunWorkerCpus()[0], cpu);
    EXPECT_EQ(ps.lastRunWorkerCpus()[1], cpu);
    EXPECT_EQ(ps.lastRunOversubscribed(),
              ps.lastRunWorkers() > host.cpuCount());
}

TEST(PartitionSet, PinningDisabledLeavesWorkersUnpinned)
{
    PartitionSet ps(4);
    ps.setParallelism(2);
    ps.setWorkerPinning(false);
    for (size_t i = 0; i < 4; ++i) {
        ps.partition(i).schedule(SimTime::us(1), [] {});
    }
    ps.runParallel(SimTime::us(10));
    for (int cpu : ps.lastRunWorkerCpus()) {
        EXPECT_EQ(cpu, -1);
    }
}

TEST(PartitionSet, AutoPlacementCoLocatesChannelPartnersOnLlc)
{
    // Synthetic 4-cpu host with two 2-wide LLC domains.  Partitions
    // 0<->1 and 2<->3 exchange channel traffic; the auto placement must
    // put each chatty pair's workers on LLC siblings and keep the two
    // pairs on distinct domains.  (Actual pinning may fail on a smaller
    // real host — the *map* is what is checked.)
    CpuTopology topo;
    topo.cpus = {0, 1, 2, 3};
    topo.llc_of = {0, 0, 1, 1};
    topo.from_sysfs = true;

    PartitionSet ps(4);
    ps.setCpuTopology(topo);
    ps.setParallelism(4);
    ps.makeChannel(0, 1, 1_us);
    ps.makeChannel(1, 0, 1_us);
    ps.makeChannel(2, 3, 1_us);
    ps.makeChannel(3, 2, 1_us);
    for (size_t i = 0; i < 4; ++i) {
        ps.partition(i).schedule(SimTime::us(1), [] {});
    }
    ps.runParallel(SimTime::us(10));

    const std::vector<int> &cpus = ps.lastRunWorkerCpus();
    ASSERT_EQ(cpus.size(), 4u);
    for (int cpu : cpus) {
        EXPECT_GE(cpu, 0); // auto pinning engaged: 2 <= workers <= cpus
    }
    auto domain = [&](size_t part) {
        return topo.llcGroupOf(cpus[ps.workerOfPartition(part)]);
    };
    EXPECT_EQ(domain(0), domain(1));
    EXPECT_EQ(domain(2), domain(3));
    EXPECT_NE(domain(0), domain(2));
}

TEST(PartitionSet, SchedulingBetweenRunsInvalidatesHorizons)
{
    // After a run drains to idle every worker has cached an "infinite"
    // local horizon.  Events scheduled directly into partitions between
    // runs must still execute in the next run — a stale cache would
    // skip them on the workers whose partitions looked idle.
    auto run = [](bool parallel) {
        PartitionSet ps(3);
        ps.setParallelism(3);
        RingWorkload w(ps, 1_us);
        w.inject(0, 42, 6);
        if (parallel) {
            ps.runParallel(SimTime::ms(1));
        } else {
            ps.runSequential(SimTime::ms(1));
        }
        for (size_t i = 0; i < 3; ++i) {
            ps.partition(i).schedule(
                SimTime::ms(1) + SimTime::us(static_cast<int64_t>(i) + 1),
                [&w, i] { w.onToken(i, 7 + i, 4); });
        }
        if (parallel) {
            ps.runParallel(SimTime::ms(2));
        } else {
            ps.runSequential(SimTime::ms(2));
        }
        return std::pair(w.globalChecksum(), ps.totalExecutedEvents());
    };
    const auto seq = run(false);
    EXPECT_GT(seq.second, 0u);
    EXPECT_EQ(seq, run(true));
}

TEST(PartitionSet, RunParallelReentryIsFatal)
{
    // Re-entering the parallel engine from inside an event would have
    // a worker drive the pool it is part of; it must die loudly.
    PartitionSet ps(2);
    ps.partition(0).schedule(SimTime::us(1), [&ps] {
        ps.runParallel(SimTime::ms(2));
    });
    EXPECT_DEATH(ps.runParallel(SimTime::ms(1)),
                 "runParallel re-entered");
}

} // namespace
} // namespace fame
} // namespace diablo
