/**
 * @file
 * The combining-tree barrier under the exact protocol PartitionSet
 * uses: every participant keeps a local parity bit, flips it before
 * each round, and passes it as the target sense.  The properties that
 * matter are (a) exactly one winner per round runs the serial section,
 * (b) the serial section observes every participant's pre-barrier
 * writes (the happens-before edge the engine's drain depends on), and
 * (c) both the spin path and the park path (spin budget 0, the
 * oversubscribed configuration) uphold them across many overlapped
 * rounds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fame/tree_barrier.hh"

using diablo::fame::TreeBarrier;

namespace {

struct HammerResult {
    uint64_t serial_runs = 0;
    uint64_t winners = 0;
    int sum_errors = 0;
};

/**
 * Run `workers` threads through `rounds` barrier rounds.  Each worker
 * bumps a private (padded) counter before arriving; the serial section
 * checks that the counters sum to exactly (round+1) * workers — any
 * worker the barrier released early, or any store the release fence
 * failed to publish, breaks the sum.
 */
HammerResult
hammer(uint32_t workers, uint32_t rounds, uint32_t spin_budget)
{
    TreeBarrier barrier;
    barrier.init(workers);
    barrier.setSpinBudget(spin_budget);

    // 8 * 8B = one cacheline per worker; the test measures protocol
    // correctness, not false-sharing throughput, but keep them apart
    // so torn timing doesn't mask ordering bugs.
    std::vector<uint64_t> arrivals(workers * 8, 0);
    std::atomic<uint64_t> serial_runs{0};
    std::atomic<uint64_t> winners{0};
    std::atomic<int> sum_errors{0};

    auto body = [&](uint32_t w) {
        uint32_t sense = 0;
        for (uint32_t r = 0; r < rounds; ++r) {
            arrivals[w * 8] += 1;
            sense ^= 1u;
            const bool won = barrier.arriveAndWait(
                w, sense, [&, r]() noexcept {
                    serial_runs.fetch_add(1, std::memory_order_relaxed);
                    uint64_t sum = 0;
                    for (uint32_t v = 0; v < workers; ++v) {
                        sum += arrivals[v * 8];
                    }
                    if (sum != uint64_t{r + 1} * workers) {
                        sum_errors.fetch_add(1,
                                             std::memory_order_relaxed);
                    }
                });
            if (won) {
                winners.fetch_add(1, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) {
        threads.emplace_back(body, w);
    }
    for (auto &t : threads) {
        t.join();
    }

    HammerResult res;
    res.serial_runs = serial_runs.load();
    res.winners = winners.load();
    res.sum_errors = sum_errors.load();
    return res;
}

TEST(TreeBarrierTest, SingleParticipantAlwaysWins)
{
    TreeBarrier barrier;
    barrier.init(1);
    uint32_t sense = 0;
    uint64_t serial = 0;
    for (int r = 0; r < 1000; ++r) {
        sense ^= 1u;
        EXPECT_TRUE(
            barrier.arriveAndWait(0, sense, [&]() noexcept { ++serial; }));
    }
    EXPECT_EQ(serial, 1000u);
}

TEST(TreeBarrierTest, OneWinnerPerRoundAcrossWidths)
{
    // Widths straddling the radix: below, at, just above, two levels.
    for (uint32_t workers : {2u, 3u, 4u, 5u, 8u, 13u}) {
        const HammerResult res = hammer(workers, 2000, 64);
        EXPECT_EQ(res.serial_runs, 2000u) << "workers=" << workers;
        EXPECT_EQ(res.winners, 2000u) << "workers=" << workers;
        EXPECT_EQ(res.sum_errors, 0) << "workers=" << workers;
    }
}

TEST(TreeBarrierTest, ParkPathSpinBudgetZero)
{
    // Spin budget 0 is what runParallel configures when oversubscribed:
    // every waiter goes straight to futex park.  Same invariants hold.
    for (uint32_t workers : {2u, 5u, 8u}) {
        const HammerResult res = hammer(workers, 500, 0);
        EXPECT_EQ(res.serial_runs, 500u) << "workers=" << workers;
        EXPECT_EQ(res.winners, 500u) << "workers=" << workers;
        EXPECT_EQ(res.sum_errors, 0) << "workers=" << workers;
    }
}

TEST(TreeBarrierTest, ReinitChangesWidth)
{
    // The engine re-inits the same barrier object per run as the fused
    // worker count changes; stale node state from a wider round must
    // not leak into a narrower one (or vice versa).
    TreeBarrier barrier;
    for (uint32_t workers : {5u, 2u, 8u, 1u, 3u}) {
        barrier.init(workers);
        barrier.setSpinBudget(TreeBarrier::kDefaultSpinBudget);
        std::atomic<uint64_t> serial{0};
        std::vector<std::thread> threads;
        for (uint32_t w = 0; w < workers; ++w) {
            threads.emplace_back([&, w] {
                uint32_t sense = 0;
                for (int r = 0; r < 200; ++r) {
                    sense ^= 1u;
                    barrier.arriveAndWait(w, sense, [&]() noexcept {
                        serial.fetch_add(1, std::memory_order_relaxed);
                    });
                }
            });
        }
        for (auto &t : threads) {
            t.join();
        }
        EXPECT_EQ(serial.load(), 200u) << "workers=" << workers;
    }
}

TEST(TreeBarrierTest, NodesAreCacheLinePadded)
{
    // Arrival traffic on one node must not invalidate its neighbours.
    EXPECT_EQ(TreeBarrier::nodeSize(), 64u);
    EXPECT_EQ(TreeBarrier::nodeAlignment(), 64u);
}

} // namespace
