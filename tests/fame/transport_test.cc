/**
 * @file
 * Transport-layer and coupled-engine tests: the SPSC-ring transports
 * that carry cross-process channel traffic, the bit-identity contract
 * of runCoupled against the sequential reference, and the conservative
 * contract's teeth — a message timestamped inside the peer's sync
 * horizon must die loudly, naming the channel, on both the in-process
 * record path (post-time check) and the shm wire path (receiver-side
 * drain check against forged records).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fame/partition.hh"
#include "fame/transport.hh"

namespace diablo {
namespace fame {
namespace {

using namespace diablo::time_literals;

// ---------------------------------------------------------------- rings

TEST(Transport, InProcPairIsFifoBothWays)
{
    auto pair = makeInProcTransportPair();
    Transport &a = *pair.first;
    Transport &b = *pair.second;

    for (uint32_t i = 0; i < 8; ++i) {
        const uint64_t rec = 0x1000 + i;
        ASSERT_TRUE(a.trySend(&rec, sizeof(rec)));
    }
    for (uint32_t i = 0; i < 8; ++i) {
        uint64_t rec = 0;
        ASSERT_EQ(b.tryRecv(&rec, sizeof(rec)), sizeof(rec));
        EXPECT_EQ(rec, 0x1000 + i);
    }
    uint64_t rec = 0;
    EXPECT_EQ(b.tryRecv(&rec, sizeof(rec)), 0u); // drained

    // Reverse direction is an independent ring.
    const uint64_t back = 0xBEEF;
    ASSERT_TRUE(b.trySend(&back, sizeof(back)));
    rec = 0;
    ASSERT_EQ(a.tryRecv(&rec, sizeof(rec)), sizeof(rec));
    EXPECT_EQ(rec, 0xBEEF);
}

TEST(Transport, FullRingRejectsUntilPeerDrains)
{
    // Minimum-size rings so a handful of records fills one.
    auto pair = makeInProcTransportPair(/*ring_capacity=*/4096);
    Transport &a = *pair.first;
    Transport &b = *pair.second;

    uint8_t payload[512] = {0};
    int pushed = 0;
    while (a.trySend(payload, sizeof(payload))) {
        ++pushed;
        ASSERT_LT(pushed, 64) << "4 KiB ring never reported full";
    }
    EXPECT_GT(pushed, 0);
    EXPECT_FALSE(a.waitForSpace(sizeof(payload), /*spin=*/16,
                                /*timeout_ns=*/1000 * 1000));

    uint8_t out[512];
    ASSERT_EQ(b.tryRecv(out, sizeof(out)), sizeof(payload));
    EXPECT_TRUE(a.trySend(payload, sizeof(payload)));
}

TEST(Transport, AbortIsStickyAndVisibleOnBothSides)
{
    auto pair = makeInProcTransportPair();
    EXPECT_FALSE(pair.first->peerAborted());
    EXPECT_FALSE(pair.second->peerAborted());
    pair.first->abort();
    EXPECT_TRUE(pair.second->peerAborted());
    EXPECT_TRUE(pair.first->peerAborted());
    // Draining still works after abort (a dying peer's last batch).
    const uint64_t rec = 7;
    ASSERT_TRUE(pair.first->trySend(&rec, sizeof(rec)));
    uint64_t out = 0;
    EXPECT_EQ(pair.second->tryRecv(&out, sizeof(out)), sizeof(out));
}

TEST(Transport, WaitForDataSeesArrivalFromAnotherThread)
{
    auto pair = makeInProcTransportPair();
    std::thread producer([tr = pair.first.get()] {
        const uint64_t rec = 42;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ASSERT_TRUE(tr->trySend(&rec, sizeof(rec)));
    });
    bool got = false;
    for (int i = 0; i < 1000 && !got; ++i) {
        got = pair.second->waitForData(/*spin=*/64,
                                       /*timeout_ns=*/2 * 1000 * 1000);
    }
    producer.join();
    EXPECT_TRUE(got);
    uint64_t out = 0;
    EXPECT_EQ(pair.second->tryRecv(&out, sizeof(out)), sizeof(out));
    EXPECT_EQ(out, 42u);
}

TEST(Transport, GroupSegmentCarriesRecordsBetweenEndpoints)
{
    // The real multi-process plumbing, minus the fork: a file-backed
    // segment, placement-initialized, with both ends of one ring pair
    // mapped in this process.
    ShmGroupLayout layout;
    layout.nprocs = 2;
    layout.ring_capacity = 1u << 14;
    const std::string path = testing::TempDir() + "diablo_group_" +
                             std::to_string(getpid()) + ".shm";
    std::remove(path.c_str());
    ShmSegment seg = ShmSegment::create(path, layout.totalBytes());
    ASSERT_TRUE(seg.valid());
    initGroupSegment(seg.data(), layout);

    auto t0 = groupTransport(seg.data(), layout, /*self=*/0, /*peer=*/1);
    auto t1 = groupTransport(seg.data(), layout, /*self=*/1, /*peer=*/0);
    const uint64_t rec = 0xD1AB10;
    ASSERT_TRUE(t0->trySend(&rec, sizeof(rec)));
    uint64_t out = 0;
    ASSERT_EQ(t1->tryRecv(&out, sizeof(out)), sizeof(out));
    EXPECT_EQ(out, 0xD1AB10u);

    ShmGroupControl *ctl = groupControl(seg.data(), layout);
    EXPECT_FALSE(ctl->anyInterrupted());
    ctl->markInterrupted(1);
    EXPECT_TRUE(ctl->anyInterrupted());
    seg.unlinkFile();
}

TEST(Transport, WireRecordLayoutIsStable)
{
    // The wire structs are copied byte-wise through shared rings; a
    // size change is a protocol change and must be deliberate.
    EXPECT_EQ(sizeof(WireHello), 48u);
    EXPECT_EQ(sizeof(WireMsgHdr), 24u);
    EXPECT_EQ(sizeof(WireSync), 32u);
}

// --------------------------------------------- process placement (LPT)

TEST(PartitionSet, LptAssignBalancesAndRankZeroOwnsPartitionZero)
{
    const auto owner = PartitionSet::lptAssign({1.0, 3.0, 2.0, 1.0}, 2);
    ASSERT_EQ(owner.size(), 4u);
    // Rank 0 always owns partition 0 (the launcher keeps the client
    // rack in the parent), and both ranks get work.
    EXPECT_EQ(owner[0], 0u);
    const std::vector<uint32_t> expect = {0, 1, 0, 1};
    EXPECT_EQ(owner, expect);
    // Deterministic: every process recomputes the same map.
    EXPECT_EQ(PartitionSet::lptAssign({1.0, 3.0, 2.0, 1.0}, 2), owner);
}

// ------------------------------------------ coupled engine bit-identity

/**
 * RingWorkload (partition_test.cc) rebuilt on byte records: tokens hop
 * partition i -> i+1 as POD TokenRec payloads through postRecord and a
 * per-channel decoder, so the exact cross-process codec path runs in
 * both the sequential reference and the coupled engines.  The checksum
 * mixes arrival times order-sensitively per partition.
 */
struct RecordWorkload {
    struct TokenRec {
        uint64_t token;
        int32_t ttl;
        uint32_t pad = 0;
    };

    RecordWorkload(PartitionSet &ps, SimTime hop_latency, int fanout = 2)
        : ps(ps), fanout(fanout), hop(hop_latency)
    {
        const size_t n = ps.size();
        counters.assign(n, 0);
        checksums.assign(n, 0);
        channels.resize(n);
        for (size_t i = 0; i < n; ++i) {
            const size_t dst = (i + 1) % n;
            channels[i] = &ps.makeChannel(i, dst, hop_latency,
                                          "hop." + std::to_string(i));
            ps.setChannelDecoder(
                *channels[i],
                [this, dst](Simulator &, SimTime, const void *bytes,
                            uint32_t len) -> EventFn {
                    EXPECT_EQ(len, sizeof(TokenRec));
                    TokenRec rec;
                    std::memcpy(&rec, bytes, sizeof(rec));
                    return EventFn([this, dst, rec] {
                        onToken(dst, rec.token, rec.ttl);
                    });
                });
        }
    }

    void
    inject(size_t part, uint64_t token, int ttl)
    {
        ps.partition(part).schedule(SimTime(), [this, part, token, ttl] {
            onToken(part, token, ttl);
        });
    }

    void
    onToken(size_t part, uint64_t token, int ttl)
    {
        Simulator &sim = ps.partition(part);
        counters[part]++;
        checksums[part] = checksums[part] * 1000003 +
                          static_cast<uint64_t>(sim.now().toPs()) + token;
        if (ttl <= 0) {
            return;
        }
        for (int f = 0; f < fanout; ++f) {
            const uint64_t child = token * 7 + static_cast<uint64_t>(f);
            const SimTime when =
                sim.now() + hop + SimTime::ns(child % 97);
            TokenRec rec{child, ttl - 1};
            ps.postRecord(*channels[part], when, &rec, sizeof(rec));
        }
    }

    PartitionSet &ps;
    std::vector<PartitionSet::Channel *> channels;
    std::vector<uint64_t> counters;
    std::vector<uint64_t> checksums;
    int fanout;
    SimTime hop;
};

struct CoupledOutcome {
    std::vector<uint64_t> counters;
    std::vector<uint64_t> checksums;
    std::vector<uint64_t> executed;
    uint64_t quanta = 0;
};

/** Sequential reference over the full model, record path included. */
CoupledOutcome
runRecordReference(size_t parts, const std::vector<SimTime> &untils)
{
    PartitionSet ps(parts);
    RecordWorkload w(ps, 1_us);
    for (size_t i = 0; i < parts; ++i) {
        w.inject(i, 1000 + i, 8);
    }
    for (SimTime until : untils) {
        ps.runSequential(until);
    }
    CoupledOutcome out;
    out.counters = w.counters;
    out.checksums = w.checksums;
    for (size_t i = 0; i < parts; ++i) {
        out.executed.push_back(ps.partition(i).executedEvents());
    }
    out.quanta = ps.quantaExecuted();
    return out;
}

/**
 * Two full copies of the model on two threads, coupled over an
 * in-process transport pair, each running only its owned partitions —
 * the per-partition results are read from the owner's copy, exactly as
 * the multiprocess launcher merges artifacts.
 */
CoupledOutcome
runRecordCoupled(size_t parts, const std::vector<SimTime> &untils,
                 bool *ok_out)
{
    const std::vector<uint32_t> owner =
        PartitionSet::lptAssign(std::vector<double>(parts, 1.0), 2);
    auto pair = makeInProcTransportPair();

    PartitionSet set_a(parts);
    PartitionSet set_b(parts);
    RecordWorkload wa(set_a, 1_us);
    RecordWorkload wb(set_b, 1_us);
    for (size_t i = 0; i < parts; ++i) {
        wa.inject(i, 1000 + i, 8);
        wb.inject(i, 1000 + i, 8);
    }

    PartitionSet::CoupledOptions oa;
    oa.self_rank = 0;
    oa.owner_of = owner;
    oa.peers = {{1u, pair.first.get()}};
    set_a.enableCoupled(oa);

    PartitionSet::CoupledOptions ob;
    ob.self_rank = 1;
    ob.owner_of = owner;
    ob.peers = {{0u, pair.second.get()}};
    set_b.enableCoupled(ob);

    bool ok_b = true;
    std::thread peer([&] {
        for (SimTime until : untils) {
            ok_b = set_b.runCoupled(until) && ok_b;
        }
    });
    bool ok_a = true;
    for (SimTime until : untils) {
        ok_a = set_a.runCoupled(until) && ok_a;
    }
    peer.join();
    *ok_out = ok_a && ok_b;

    // Both engines sent and received traffic; the ledgers must agree.
    EXPECT_GT(set_a.coupledStats().sync_sent, 0u);
    EXPECT_GT(set_a.coupledStats().msgs_sent, 0u);
    EXPECT_GT(set_b.coupledStats().msgs_sent, 0u);
    EXPECT_EQ(set_a.coupledStats().msgs_sent,
              set_b.coupledStats().msgs_recv);
    EXPECT_EQ(set_b.coupledStats().msgs_sent,
              set_a.coupledStats().msgs_recv);
    EXPECT_EQ(set_a.coupledStats().bytes_sent,
              set_b.coupledStats().bytes_recv);
    // Lockstep: both sides executed the identical window sequence.
    EXPECT_EQ(set_a.quantaExecuted(), set_b.quantaExecuted());

    CoupledOutcome out;
    for (size_t i = 0; i < parts; ++i) {
        const RecordWorkload &w = owner[i] == 0 ? wa : wb;
        PartitionSet &ps = owner[i] == 0 ? set_a : set_b;
        out.counters.push_back(w.counters[i]);
        out.checksums.push_back(w.checksums[i]);
        out.executed.push_back(ps.partition(i).executedEvents());
    }
    out.quanta = set_a.quantaExecuted();
    return out;
}

TEST(CoupledEngine, BitIdenticalToSequentialReference)
{
    const std::vector<SimTime> untils = {SimTime::ms(2)};
    const CoupledOutcome ref = runRecordReference(4, untils);
    for (uint64_t c : ref.counters) {
        EXPECT_GT(c, 0u); // traffic crossed every partition
    }
    bool ok = false;
    const CoupledOutcome mp = runRecordCoupled(4, untils, &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(ref.counters, mp.counters);
    EXPECT_EQ(ref.checksums, mp.checksums);
    EXPECT_EQ(ref.executed, mp.executed);
    EXPECT_EQ(ref.quanta, mp.quanta);
}

TEST(CoupledEngine, DriveLoopWindowsStayAligned)
{
    // The launcher drives runCoupled in outer windows; each call's
    // entry SYNC exchange must rediscover the same global window
    // sequence the one-shot sequential run executes.
    const std::vector<SimTime> untils = {SimTime::us(300), SimTime::ms(1),
                                         SimTime::ms(2)};
    const CoupledOutcome ref =
        runRecordReference(4, {SimTime::ms(2)});
    bool ok = false;
    const CoupledOutcome mp = runRecordCoupled(4, untils, &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(ref.counters, mp.counters);
    EXPECT_EQ(ref.checksums, mp.checksums);
    EXPECT_EQ(ref.executed, mp.executed);
}

TEST(CoupledEngine, AbortedPeerAbandonsInsteadOfHanging)
{
    // A peer that dies before HELLO must not wedge the survivor: the
    // aborted transport turns runCoupled into a false return.
    auto pair = makeInProcTransportPair();
    PartitionSet ps(2);
    auto &ch = ps.makeChannel(0, 1, 10_us, "trunk.dead");
    ps.setChannelDecoder(ch, [](Simulator &, SimTime, const void *,
                                uint32_t) -> EventFn {
        return EventFn([] {});
    });
    PartitionSet::CoupledOptions o;
    o.self_rank = 1;
    o.owner_of = {0, 1};
    o.peers = {{0u, pair.second.get()}};
    ps.enableCoupled(o);
    pair.first->abort(); // the "peer" dies
    EXPECT_FALSE(ps.runCoupled(SimTime::us(50)));
    // Abandonment is sticky: later windows fail fast too.
    EXPECT_FALSE(ps.runCoupled(SimTime::us(100)));
}

// ----------------------------------- conservative-contract death tests

/** FNV-1a, matching the owner-hash fold in the HELLO handshake. */
uint64_t
fnv1a(const void *bytes, size_t n)
{
    const auto *p = static_cast<const uint8_t *>(bytes);
    uint64_t h = 1469598103934665603ULL;
    for (size_t i = 0; i < n; ++i) {
        h = (h ^ p[i]) * 1099511628211ULL;
    }
    return h;
}

TEST(CoupledEngineDeathTest, PostRecordBelowLookaheadNamesChannel)
{
    // In-process path: the record post (what ChannelLink's record hook
    // calls) is validated against the source clock at post time with
    // the channel named — same contract as Channel::post.
    PartitionSet ps(2);
    auto &ch = ps.makeChannel(0, 1, 10_us, "tor0.trunk");
    ps.setChannelDecoder(ch, [](Simulator &, SimTime, const void *,
                                uint32_t) -> EventFn {
        return EventFn([] {});
    });
    uint64_t payload = 1;
    ps.partition(0).schedule(5_us, [&] {
        // now + 3 us < now + 10 us lookahead: lies about the latency.
        ps.postRecord(ch, SimTime::us(8), &payload, sizeof(payload));
    });
    EXPECT_DEATH(ps.runSequential(SimTime::us(100)),
                 "channel tor0.trunk.*violates conservative contract");
}

TEST(CoupledEngineDeathTest, PostRecordOnForeignSourcePanics)
{
    // Posting a record whose source partition belongs to a peer would
    // duplicate that peer's traffic; the classification check refuses.
    auto pair = makeInProcTransportPair();
    PartitionSet ps(2);
    auto &ch = ps.makeChannel(0, 1, 10_us, "trunk.in");
    ps.setChannelDecoder(ch, [](Simulator &, SimTime, const void *,
                                uint32_t) -> EventFn {
        return EventFn([] {});
    });
    PartitionSet::CoupledOptions o;
    o.self_rank = 1;
    o.owner_of = {0, 1};
    o.peers = {{0u, pair.second.get()}};
    ps.enableCoupled(o);
    uint64_t payload = 1;
    EXPECT_DEATH(
        ps.postRecord(ch, SimTime::us(10), &payload, sizeof(payload)),
        "record posted from a partition this process does not own");
}

/**
 * Receiver-side horizon check: play rank 0 by hand over @p forger,
 * pre-loading a protocol-correct HELLO, the entry SYNC, then a MSG
 * timestamped *behind* the clock the victim's own event will have
 * established, closed by a window SYNC.  The victim's drain must die
 * naming the channel rather than deliver into its past.
 */
void
runForgedWireScenario(Transport *victim_tr, Transport *forger)
{
    PartitionSet ps(2);
    auto &ch = ps.makeChannel(0, 1, 10_us, "trunk.forged");
    ps.setChannelDecoder(ch, [](Simulator &, SimTime, const void *,
                                uint32_t) -> EventFn {
        return EventFn([] {});
    });
    ps.partition(1).schedule(9_us, [] {}); // advances the victim clock
    PartitionSet::CoupledOptions o;
    o.self_rank = 1;
    o.owner_of = {0, 1};
    o.peers = {{0u, victim_tr}};
    ps.enableCoupled(o);

    WireHello hello;
    hello.self_rank = 0;
    hello.partitions = 2;
    hello.channels = 1;
    hello.quantum_ps = SimTime::us(10).toPs();
    const uint32_t owners[2] = {0, 1};
    hello.owner_hash = fnv1a(owners, sizeof(owners));
    ASSERT_TRUE(forger->trySend(&hello, sizeof(hello)));

    WireSync entry;
    entry.seq = 0;
    entry.bound_ps = -1; // entry-barrier sentinel
    entry.contrib_ps = 0;
    ASSERT_TRUE(forger->trySend(&entry, sizeof(entry)));

    struct {
        WireMsgHdr hdr;
        uint64_t payload;
    } msg;
    msg.hdr.channel = 0;
    msg.hdr.len = sizeof(msg.payload);
    msg.hdr.when_ps = SimTime::us(1).toPs(); // behind the 9 us clock
    msg.payload = 0xDEAD;
    ASSERT_TRUE(forger->trySend(&msg, sizeof(msg)));

    WireSync window;
    window.seq = 1;
    window.bound_ps = SimTime::us(10).toPs();
    window.contrib_ps = SimTime::us(20).toPs();
    ASSERT_TRUE(forger->trySend(&window, sizeof(window)));

    ps.runCoupled(SimTime::us(10)); // dies draining window 1
}

TEST(CoupledEngineDeathTest, ForgedMessageBehindClockDiesInProc)
{
    EXPECT_DEATH(
        {
            auto pair = makeInProcTransportPair();
            runForgedWireScenario(pair.first.get(), pair.second.get());
        },
        "channel trunk.forged.*causality violation");
}

TEST(CoupledEngineDeathTest, ForgedMessageBehindClockDiesOverShm)
{
    // Same forged conversation through a real file-backed group
    // segment: the shm wire path performs the identical check.
    EXPECT_DEATH(
        {
            ShmGroupLayout layout;
            layout.nprocs = 2;
            layout.ring_capacity = 1u << 14;
            const std::string path = testing::TempDir() +
                                     "diablo_forged_" +
                                     std::to_string(getpid()) + ".shm";
            std::remove(path.c_str());
            ShmSegment seg =
                ShmSegment::create(path, layout.totalBytes());
            initGroupSegment(seg.data(), layout);
            auto victim = groupTransport(seg.data(), layout, 1, 0);
            auto forger = groupTransport(seg.data(), layout, 0, 1);
            seg.unlinkFile();
            runForgedWireScenario(victim.get(), forger.get());
        },
        "channel trunk.forged.*causality violation");
}

} // namespace
} // namespace fame
} // namespace diablo
