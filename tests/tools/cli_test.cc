/**
 * @file
 * End-to-end tests of the operator CLI: diablo_run's JSON artifact and
 * argument validation, and a small diablo_sweep grid.  The binaries
 * under test are injected by CMake as DIABLO_RUN_BIN / DIABLO_SWEEP_BIN
 * (tools_test therefore depends on both targets being built).
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "diablo_cli_" + name;
}

/** Run a shell command, returning its exit code (-1 on system error). */
int
runCmd(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    if (status < 0) {
        return -1;
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/** Tiny incast scenario shared by the artifact tests (fast: <1 s). */
const char kTinyIncast[] =
    " incast incast.servers=2 incast.iterations=2 incast.block_bytes=8192";

TEST(DiabloRunCli, JsonArtifactHasTheGoldenShape)
{
    const std::string json = tmpPath("artifact.json");
    const std::string cmd = std::string(DIABLO_RUN_BIN) + kTinyIncast +
                            " --json " + json + " > /dev/null 2>&1";
    ASSERT_EQ(runCmd(cmd), 0);

    const std::string doc = slurp(json);
    for (const char *needle :
         {"\"schema\": 1", "\"workload\": \"incast\"",
          "\"name\": \"single\"", "\"results\":", "\"goodput_mbps\":",
          "\"latencies\":", "\"iteration_us\":", "\"counters\":",
          "\"network\":", "\"datapath\":", "\"partitions\": [",
          "\"pool_makes\":", "\"mem\":", "\n  \"fingerprint\": \"0x",
          "\"config\":", "\"incast.servers\": \"2\""}) {
        EXPECT_NE(doc.find(needle), std::string::npos) << needle;
    }
    // No fault plan, no telemetry: those sections must be absent.
    EXPECT_EQ(doc.find("\"faults\":"), std::string::npos);
    EXPECT_EQ(doc.find("\"telemetry\":"), std::string::npos);
    std::remove(json.c_str());
}

TEST(DiabloRunCli, TelemetryStreamsAndIsRecordedInTheArtifact)
{
    const std::string json = tmpPath("telemetry.json");
    const std::string stream = json + ".telemetry.jsonl";
    const std::string cmd = std::string(DIABLO_RUN_BIN) + kTinyIncast +
                            " telemetry.period=10000 --json " + json +
                            " > /dev/null 2>&1";
    ASSERT_EQ(runCmd(cmd), 0);

    EXPECT_NE(slurp(json).find("\"telemetry\":"), std::string::npos);
    const std::string rows = slurp(stream);
    EXPECT_NE(rows.find("\"t_us\":"), std::string::npos);
    EXPECT_NE(rows.find("\"goodput_mbps\":"), std::string::npos);
    std::remove(json.c_str());
    std::remove(stream.c_str());
}

TEST(DiabloRunCli, RejectsMalformedThreads)
{
    for (const char *bad : {"abc", "-3", "4x", ""}) {
        const std::string cmd = std::string(DIABLO_RUN_BIN) +
                                " incast --threads '" + bad +
                                "' > /dev/null 2>&1";
        EXPECT_EQ(runCmd(cmd), 2) << "'" << bad << "'";
    }
    // Flag=value spelling is covered too.
    const std::string cmd = std::string(DIABLO_RUN_BIN) +
                            " incast --threads=zzz > /dev/null 2>&1";
    EXPECT_EQ(runCmd(cmd), 2);
}

TEST(DiabloSweepCli, TwoPointEngineGridCrossChecks)
{
    const std::string dir = tmpPath("sweep");
    const std::string spec = tmpPath("sweep.spec");
    {
        std::ofstream out(spec);
        out << "sweep.name = cli_smoke\n"
            << "workload = incast\n"
            << "engine = seq,par   # fingerprint cross-check axis\n"
            << "incast.servers = 2\n"
            << "incast.iterations = 2\n"
            << "incast.block_bytes = 8192\n"
            << "sweep.jobs = 2\n";
    }
    const std::string cmd = std::string(DIABLO_SWEEP_BIN) + " " + spec +
                            " --out " + dir + " > " + dir + ".log 2>&1";
    ASSERT_EQ(runCmd(cmd), 0) << slurp(dir + ".log");

    const std::string report = slurp(dir + "/report.json");
    EXPECT_NE(report.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(report.find("\"engine_cross_checks\":"),
              std::string::npos);
    EXPECT_NE(report.find("\"match\": true"), std::string::npos);
    EXPECT_EQ(report.find("\"match\": false"), std::string::npos);

    // Per-run artifacts exist and fingerprint-match across engines.
    const std::string log = slurp(dir + ".log");
    EXPECT_NE(log.find("MATCH"), std::string::npos);
    EXPECT_EQ(log.find("MISMATCH"), std::string::npos);
    struct stat st;
    EXPECT_EQ(stat((dir + "/run000_engine_seq.json").c_str(), &st), 0);
    EXPECT_EQ(stat((dir + "/run001_engine_par.json").c_str(), &st), 0);
}

TEST(DiabloSweepCli, SpecWithoutWorkloadFails)
{
    const std::string spec = tmpPath("bad.spec");
    {
        std::ofstream out(spec);
        out << "engine = seq\n";
    }
    const std::string cmd = std::string(DIABLO_SWEEP_BIN) + " " + spec +
                            " --out " + tmpPath("bad_out") +
                            " > /dev/null 2>&1";
    EXPECT_NE(runCmd(cmd), 0);
}

} // namespace
