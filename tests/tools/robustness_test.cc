/**
 * @file
 * Unattended-operation end-to-end tests: SIGTERM and watchdog runs
 * must finalize valid "interrupted" partial artifacts, and a sweep
 * with timed-out / crashed grid points must exit with the partial
 * code and come back green under --resume with the engine
 * fingerprint cross-check intact.
 *
 * The long scenario (96-server incast, 256 KiB blocks) runs ~2 s of
 * wall clock before any cap, so a signal sent a few hundred ms in
 * always lands mid-run; the short scenario finishes in tens of ms.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/artifact.hh"
#include "core/interrupt.hh"

namespace {

using namespace std::chrono_literals;

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "diablo_robust_" + name;
}

int
runCmd(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    if (status < 0) {
        return -1;
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/** A run that takes ~2 s wall — long enough to interrupt reliably. */
const char kSlowIncast[] =
    " incast incast.servers=96 incast.racks=12 incast.iterations=100"
    " incast.block_bytes=262144 --engine seq";

/** Spawn diablo_run (args appended after the binary) with output to
 *  @p log; returns the child pid. */
pid_t
spawnRun(const std::string &args, const std::string &log)
{
    const pid_t pid = fork();
    if (pid != 0) {
        return pid;
    }
    if (std::freopen(log.c_str(), "w", stdout) == nullptr ||
        dup2(fileno(stdout), fileno(stderr)) < 0) {
        std::_Exit(127);
    }
    std::vector<std::string> argv_s;
    argv_s.push_back(DIABLO_RUN_BIN);
    size_t pos = 0;
    while (pos < args.size()) {
        const size_t sp = args.find(' ', pos);
        const std::string tok =
            args.substr(pos, sp == std::string::npos ? std::string::npos
                                                     : sp - pos);
        if (!tok.empty()) {
            argv_s.push_back(tok);
        }
        if (sp == std::string::npos) {
            break;
        }
        pos = sp + 1;
    }
    std::vector<char *> argv;
    for (const std::string &a : argv_s) {
        argv.push_back(const_cast<char *>(a.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    std::_Exit(127);
}

/** waitpid with EINTR retry; returns the exit code (128+sig if
 *  signalled). */
int
waitExit(pid_t pid)
{
    int status = 0;
    while (waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR) {
            ADD_FAILURE() << "waitpid: " << std::strerror(errno);
            return -1;
        }
    }
    return WIFEXITED(status) ? WEXITSTATUS(status)
                             : 128 + WTERMSIG(status);
}

TEST(RunInterrupt, SigtermFinalizesAValidPartialArtifact)
{
    const std::string json = tmpPath("sigterm.json");
    const std::string log = tmpPath("sigterm.log");
    std::remove(json.c_str());

    const pid_t pid =
        spawnRun(std::string(kSlowIncast) + " --json " + json, log);
    ASSERT_GT(pid, 0);
    std::this_thread::sleep_for(300ms);
    ASSERT_EQ(kill(pid, SIGTERM), 0) << "run exited before the signal";
    EXPECT_EQ(waitExit(pid), diablo::core::kExitInterrupted);

    // The partial artifact is complete JSON with status/cause/
    // fingerprint — but validate() must refuse it for resume.
    const std::string doc = slurp(json);
    EXPECT_NE(doc.find("\"status\": \"interrupted\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"interrupt_cause\": \"SIGTERM\""),
              std::string::npos);
    EXPECT_NE(doc.find("\n  \"fingerprint\": \"0x"), std::string::npos);
    const auto v = diablo::analysis::RunArtifact::validate(json);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.status, "interrupted");
    EXPECT_FALSE(v.fingerprint.empty());
    std::remove(json.c_str());
    std::remove(log.c_str());
}

TEST(RunInterrupt, WatchdogDeadlineAbortsWithDiagnostic)
{
    const std::string json = tmpPath("deadline.json");
    const std::string log = tmpPath("deadline.log");
    const std::string cmd = std::string(DIABLO_RUN_BIN) + kSlowIncast +
                            " run.deadline=0.4 --json " + json + " > " +
                            log + " 2>&1";
    EXPECT_EQ(runCmd(cmd), diablo::core::kExitWatchdog);

    const std::string doc = slurp(json);
    EXPECT_NE(doc.find("\"status\": \"interrupted\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"interrupt_cause\": \"watchdog-deadline\""),
              std::string::npos);
    // The watchdog dumped its best-effort engine diagnostic.
    const std::string out = slurp(log);
    EXPECT_NE(out.find("watchdog: deadline tripped"),
              std::string::npos);
    EXPECT_NE(out.find("engine state at deadline trip"),
              std::string::npos);
    std::remove(json.c_str());
    std::remove(log.c_str());
}

TEST(RunInterrupt, GenerousWatchdogIsObserverFree)
{
    // Fingerprint parity: armed-but-untripped watchdog vs no watchdog.
    const std::string j1 = tmpPath("wd_off.json");
    const std::string j2 = tmpPath("wd_on.json");
    const char kTiny[] =
        " incast incast.servers=2 incast.iterations=2"
        " incast.block_bytes=8192";
    ASSERT_EQ(runCmd(std::string(DIABLO_RUN_BIN) + kTiny + " --json " +
                     j1 + " > /dev/null 2>&1"),
              0);
    ASSERT_EQ(runCmd(std::string(DIABLO_RUN_BIN) + kTiny +
                     " run.deadline=600 run.stall=60 --json " + j2 +
                     " > /dev/null 2>&1"),
              0);
    const auto v1 = diablo::analysis::RunArtifact::validate(j1);
    const auto v2 = diablo::analysis::RunArtifact::validate(j2);
    ASSERT_TRUE(v1.ok) << v1.error;
    ASSERT_TRUE(v2.ok) << v2.error;
    EXPECT_EQ(v1.fingerprint, v2.fingerprint);
    std::remove(j1.c_str());
    std::remove(j2.c_str());
}

/** Shared spec for the sweep tests: 4 grid points, two of them slow
 *  enough (~1 s) that a sub-second timeout reliably kills them. */
void
writeMixSpec(const std::string &path)
{
    std::ofstream out(path);
    out << "sweep.name = robustness\n"
        << "workload = incast\n"
        << "engine = seq,par\n"
        << "incast.block_bytes = 4096,262144\n"
        << "incast.servers = 32\n"
        << "incast.racks = 4\n"
        << "incast.iterations = 20\n"
        << "sweep.jobs = 2\n";
}

TEST(SweepRobustness, TimeoutKillAndResumeEndToEnd)
{
    const std::string dir = tmpPath("sweep");
    const std::string spec = tmpPath("sweep.spec");
    writeMixSpec(spec);
    runCmd("rm -rf " + dir);

    // Pass 1: a timeout far below the slow points' ~1 s wall clock
    // kills them (SIGTERM -> partial artifact); the fast points
    // complete.  Exit: the partial-failure code, not 1.
    const std::string pass1 = std::string(DIABLO_SWEEP_BIN) + " " +
                              spec + " --out " + dir +
                              " --timeout 0.4 > " + dir + "_p1.log 2>&1";
    EXPECT_EQ(runCmd(pass1), diablo::core::kExitSweepPartial);
    const std::string rep1 = slurp(dir + "/report.json");
    EXPECT_NE(rep1.find("\"status\": \"timeout\""), std::string::npos);
    EXPECT_NE(rep1.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(rep1.find("\"ok\": false"), std::string::npos);

    // Simulate an externally SIGKILLed job: truncate one completed
    // artifact into debris a resume must detect and re-run.
    const std::string victim =
        dir + "/run000_engine_seq_incast.block_bytes_4096.json";
    {
        const std::string doc = slurp(victim);
        std::FILE *f = std::fopen(victim.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fwrite(doc.data(), 1, doc.size() / 3, f);
        std::fclose(f);
    }

    // Pass 2: --resume re-runs only the debris + timed-out points and
    // the whole sweep comes back green, cross-checks intact.
    const std::string pass2 = std::string(DIABLO_SWEEP_BIN) + " " +
                              spec + " --resume " + dir +
                              " --timeout 120 > " + dir +
                              "_p2.log 2>&1";
    EXPECT_EQ(runCmd(pass2), 0);
    const std::string out2 = slurp(dir + "_p2.log");
    EXPECT_NE(out2.find("resume: 1/4 grid points already valid"),
              std::string::npos)
        << out2;
    const std::string rep2 = slurp(dir + "/report.json");
    EXPECT_NE(rep2.find("\"status\": \"skipped-resume\""),
              std::string::npos);
    EXPECT_EQ(rep2.find("\"status\": \"timeout\""), std::string::npos);
    EXPECT_NE(rep2.find("\"ok\": true"), std::string::npos);
    EXPECT_EQ(rep2.find("\"match\": false"), std::string::npos);
    // Both engine groups cross-checked (skipped + re-run mixed).
    EXPECT_NE(rep2.find("\"match\": true"), std::string::npos);
    runCmd("rm -rf " + dir + " " + dir + "_p1.log " + dir + "_p2.log " +
           spec);
}

TEST(SweepRobustness, RetriesPromoteFlakyJobsToGreen)
{
    const std::string dir = tmpPath("retry");
    const std::string spec = tmpPath("retry.spec");
    const std::string flaky = tmpPath("flaky.sh");
    const std::string markers = tmpPath("markers");
    runCmd("rm -rf " + dir + " " + markers);
    ASSERT_EQ(mkdir(markers.c_str(), 0755), 0);
    {
        std::ofstream out(spec);
        out << "workload = incast\n"
            << "engine = seq,par\n"
            << "incast.servers = 2\n"
            << "incast.iterations = 2\n"
            << "incast.block_bytes = 8192\n"
            << "sweep.retries = 2\n"
            << "sweep.backoff = 0.05\n";
    }
    {
        // Wrapper runner: fail each grid point's first attempt, then
        // delegate to the real diablo_run.
        std::ofstream out(flaky);
        out << "#!/bin/sh\n"
            << "art=\"\"\n"
            << "prev=\"\"\n"
            << "for a in \"$@\"; do\n"
            << "  [ \"$prev\" = \"--json\" ] && art=\"$a\"\n"
            << "  prev=\"$a\"\n"
            << "done\n"
            << "m=" << markers
            << "/$(basename \"$art\" | sed 's/\\.r[0-9]*//')\n"
            << "if [ ! -e \"$m\" ]; then\n"
            << "  : > \"$m\"\n"
            << "  echo 'flaky: injected failure' >&2\n"
            << "  exit 1\n"
            << "fi\n"
            << "exec " << DIABLO_RUN_BIN << " \"$@\"\n";
    }
    ASSERT_EQ(chmod(flaky.c_str(), 0755), 0);

    const std::string cmd = std::string(DIABLO_SWEEP_BIN) + " " + spec +
                            " --out " + dir + " --runner " + flaky +
                            " > " + dir + ".log 2>&1";
    EXPECT_EQ(runCmd(cmd), 0);
    const std::string rep = slurp(dir + "/report.json");
    EXPECT_NE(rep.find("\"status\": \"retried\""), std::string::npos);
    EXPECT_NE(rep.find("\"attempts\": 2"), std::string::npos);
    EXPECT_NE(rep.find("\"ok\": true"), std::string::npos);
    EXPECT_EQ(rep.find("\"match\": false"), std::string::npos);
    runCmd("rm -rf " + dir + " " + dir + ".log " + spec + " " + flaky +
           " " + markers);
}

} // namespace
