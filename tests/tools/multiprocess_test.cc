/**
 * @file
 * End-to-end tests of the multiprocess engine launcher: a --processes 2
 * incast must produce a byte-identical fingerprint to the in-process
 * sequential run (with and without a fault plan), SIGTERM to the
 * leader must forward to the engine children and finalize an
 * interrupted partial artifact with the interrupted exit code, and the
 * mode's argument validation must reject the unsupported combinations
 * loudly instead of silently degrading.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/artifact.hh"
#include "core/interrupt.hh"

namespace {

using namespace std::chrono_literals;

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "diablo_mp_" + name;
}

int
runCmd(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    if (status < 0) {
        return -1;
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/** The "fingerprint": "0x..." value of an artifact document. */
std::string
fingerprintOf(const std::string &doc)
{
    const char key[] = "\"fingerprint\": \"";
    const size_t at = doc.find(key);
    if (at == std::string::npos) {
        return "";
    }
    const size_t start = at + sizeof(key) - 1;
    const size_t end = doc.find('"', start);
    return doc.substr(start, end - start);
}

/** The CI smoke scenario: 4 racks so the LPT split has real work on
 *  both ranks, small enough to finish in about a second. */
const char kMpIncast[] =
    " incast incast.servers=8 incast.racks=4 incast.iterations=5";

const char kFaultPlan[] =
    " fault.0.kind=trunk_down fault.0.at_us=200000 fault.0.rack=1"
    " fault.0.plane=0 fault.1.kind=trunk_up fault.1.at_us=900000"
    " fault.1.rack=1 fault.1.plane=0";

void
expectCrossProcessFingerprintMatch(const std::string &tag,
                                   const std::string &extra)
{
    const std::string seq_json = tmpPath(tag + "_seq.json");
    const std::string mp_json = tmpPath(tag + "_mp.json");
    ASSERT_EQ(runCmd(std::string(DIABLO_RUN_BIN) + kMpIncast + extra +
                     " --engine seq --json " + seq_json +
                     " > /dev/null 2>&1"),
              0);
    ASSERT_EQ(runCmd(std::string(DIABLO_RUN_BIN) + kMpIncast + extra +
                     " --processes 2 --json " + mp_json +
                     " > /dev/null 2>&1"),
              0);

    const std::string seq_doc = slurp(seq_json);
    const std::string mp_doc = slurp(mp_json);
    const std::string seq_fp = fingerprintOf(seq_doc);
    ASSERT_FALSE(seq_fp.empty());
    EXPECT_EQ(seq_fp, fingerprintOf(mp_doc));

    // The merged artifact names the engine and records the transport
    // ledger in its own (non-folded) counter group.
    EXPECT_NE(mp_doc.find("\"name\": \"mp\""), std::string::npos);
    EXPECT_NE(mp_doc.find("\"mp\":"), std::string::npos);
    EXPECT_NE(mp_doc.find("\"sync_sent\":"), std::string::npos);
    EXPECT_NE(mp_doc.find("\"processes\": 2"), std::string::npos);
    EXPECT_TRUE(diablo::analysis::RunArtifact::validate(mp_json).ok);
    std::remove(seq_json.c_str());
    std::remove(mp_json.c_str());
}

// The tentpole acceptance criterion, as CI runs it: 4-rack incast at
// --processes 2 fingerprints byte-identical to the one-process
// sequential reference.
TEST(MultiprocessRun, FingerprintMatchesSequential)
{
    expectCrossProcessFingerprintMatch("clean", "");
}

// Same with a CLI fault plan: every process installs the full plan and
// the replicated routing-view updates keep the merged ledgers exact.
TEST(MultiprocessRun, FingerprintMatchesSequentialUnderFaults)
{
    expectCrossProcessFingerprintMatch("faulted", kFaultPlan);
}

/** Spawn diablo_run with output to @p log; returns the child pid. */
pid_t
spawnRun(const std::string &args, const std::string &log)
{
    const pid_t pid = fork();
    if (pid != 0) {
        return pid;
    }
    if (std::freopen(log.c_str(), "w", stdout) == nullptr ||
        dup2(fileno(stdout), fileno(stderr)) < 0) {
        std::_Exit(127);
    }
    std::vector<std::string> argv_s;
    argv_s.push_back(DIABLO_RUN_BIN);
    size_t pos = 0;
    while (pos < args.size()) {
        const size_t sp = args.find(' ', pos);
        const std::string tok =
            args.substr(pos, sp == std::string::npos ? std::string::npos
                                                     : sp - pos);
        if (!tok.empty()) {
            argv_s.push_back(tok);
        }
        if (sp == std::string::npos) {
            break;
        }
        pos = sp + 1;
    }
    std::vector<char *> argv;
    for (const std::string &a : argv_s) {
        argv.push_back(const_cast<char *>(a.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    std::_Exit(127);
}

int
waitExit(pid_t pid)
{
    int status = 0;
    while (waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR) {
            ADD_FAILURE() << "waitpid: " << std::strerror(errno);
            return -1;
        }
    }
    return WIFEXITED(status) ? WEXITSTATUS(status)
                             : 128 + WTERMSIG(status);
}

// SIGTERM to the leader forwards to the spawned engine ranks; the
// group stops at one agreed window boundary and the leader finalizes
// an interrupted partial artifact with the interrupted exit code.
TEST(MultiprocessRun, SigtermForwardsToEngineChildren)
{
    const std::string json = tmpPath("sigterm.json");
    const std::string log = tmpPath("sigterm.log");
    std::remove(json.c_str());

    const pid_t pid = spawnRun(
        " incast incast.servers=96 incast.racks=12 incast.iterations=100"
        " incast.block_bytes=262144 --processes 2 --json " + json,
        log);
    ASSERT_GT(pid, 0);
    std::this_thread::sleep_for(500ms);
    ASSERT_EQ(kill(pid, SIGTERM), 0) << "run exited before the signal";
    EXPECT_EQ(waitExit(pid), diablo::core::kExitInterrupted);

    const std::string doc = slurp(json);
    EXPECT_NE(doc.find("\"status\": \"interrupted\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"interrupt_cause\": \"SIGTERM\""),
              std::string::npos);
    const auto v = diablo::analysis::RunArtifact::validate(json);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.status, "interrupted");
    std::remove(json.c_str());
    std::remove(log.c_str());
}

TEST(MultiprocessRun, RejectsUnsupportedCombinations)
{
    // AppData on in-flight packets cannot cross a process boundary.
    EXPECT_EQ(runCmd(std::string(DIABLO_RUN_BIN) +
                     " memcached --processes 2 > /dev/null 2>&1"),
              2);
    // Telemetry samplers read only the leader's partitions.
    EXPECT_EQ(runCmd(std::string(DIABLO_RUN_BIN) + kMpIncast +
                     " telemetry.period=10000 --processes 2"
                     " > /dev/null 2>&1"),
              2);
    // A process count needs to be a positive integer.
    EXPECT_EQ(runCmd(std::string(DIABLO_RUN_BIN) + kMpIncast +
                     " --processes 0 > /dev/null 2>&1"),
              2);
    EXPECT_EQ(runCmd(std::string(DIABLO_RUN_BIN) + kMpIncast +
                     " --processes abc > /dev/null 2>&1"),
              2);
    // One rack = one partition: nothing to split across processes.
    EXPECT_EQ(runCmd(std::string(DIABLO_RUN_BIN) +
                     " incast incast.servers=2 incast.racks=1"
                     " --processes 2 > /dev/null 2>&1"),
              2);
}

} // namespace
