#include <gtest/gtest.h>

#include <vector>

#include "net/fault_injection.hh"
#include "net/link.hh"

namespace diablo {
namespace net {
namespace {

using namespace diablo::time_literals;

class CollectSink : public PacketSink {
  public:
    explicit CollectSink(Simulator &sim) : sim_(sim) {}

    void
    receive(PacketPtr p) override
    {
        arrivals.emplace_back(sim_.now(), std::move(p));
    }

    std::vector<std::pair<SimTime, PacketPtr>> arrivals;

  private:
    Simulator &sim_;
};

PacketPtr
udpPacket(uint32_t payload)
{
    auto p = makePacket();
    p->flow.proto = Proto::Udp;
    p->payload_bytes = payload;
    return p;
}

TEST(LinkFault, DownLinkDropsAndCountsInsteadOfPanicking)
{
    Simulator sim;
    CollectSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(1), 1_us);
    link.connectTo(sink);

    EXPECT_TRUE(link.isUp());
    link.setUp(false);
    EXPECT_FALSE(link.isUp());

    sim.schedule(0_ns, [&] { link.transmit(udpPacket(1000)); });
    sim.schedule(10_us, [&] { link.transmit(udpPacket(1000)); });
    sim.run();

    EXPECT_TRUE(sink.arrivals.empty());
    EXPECT_EQ(link.downDrops(), 2u);
    EXPECT_EQ(link.packetsSent(), 0u);
}

TEST(LinkFault, DownLinkStillFiresTxDoneSoQueuesDrain)
{
    // The contract that lets switch egress queues drain into counted
    // drops with zero switch-model changes: a dropped transmit frees
    // the transmitter immediately and still fires tx-done.
    Simulator sim;
    CollectSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(1), 1_us);
    link.connectTo(sink);
    link.setUp(false);

    int tx_done_calls = 0;
    std::vector<SimTime> done_at;
    link.setTxDoneCallback([&] {
        ++tx_done_calls;
        done_at.push_back(sim.now());
        if (tx_done_calls < 3) {
            link.transmit(udpPacket(500)); // re-entrant drain
        }
    });
    sim.schedule(5_us, [&] { link.transmit(udpPacket(500)); });
    sim.run();

    EXPECT_EQ(tx_done_calls, 3);
    EXPECT_EQ(link.downDrops(), 3u);
    for (SimTime t : done_at) {
        EXPECT_EQ(t, 5_us); // all at the transmit instant, no serialization
    }
}

TEST(LinkFault, LinkRecoversAfterSetUp)
{
    Simulator sim;
    CollectSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(1), 1_us);
    link.connectTo(sink);

    link.setUp(false);
    sim.schedule(0_ns, [&] { link.transmit(udpPacket(1000)); });
    sim.schedule(1_us, [&] { link.setUp(true); });
    sim.schedule(2_us, [&] { link.transmit(udpPacket(1000)); });
    sim.run();

    EXPECT_EQ(link.downDrops(), 1u);
    ASSERT_EQ(sink.arrivals.size(), 1u);
    EXPECT_EQ(link.packetsSent(), 1u);
}

TEST(LinkFault, BrownoutAddsLatencyAndNeverDeliversEarlier)
{
    Simulator sim;
    CollectSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(1), 1_us);
    link.connectTo(sink);

    // loss_prob 0: pure latency degradation, every frame survives.
    link.setDegraded(0.0, 7_us, 42);
    EXPECT_TRUE(link.degraded());

    auto p = udpPacket(1462);
    const uint32_t wire = p->wireBytes();
    sim.schedule(0_ns, [&] { link.transmit(std::move(p)); });
    sim.run();

    ASSERT_EQ(sink.arrivals.size(), 1u);
    const SimTime clean = Bandwidth::gbps(1).transferTime(wire) + 1_us;
    EXPECT_EQ(sink.arrivals[0].first, clean + 7_us);
}

TEST(LinkFault, BrownoutLossIsSeedDeterministic)
{
    auto run = [](uint64_t seed) {
        Simulator sim;
        CollectSink sink(sim);
        Link link(sim, "l0", Bandwidth::gbps(10), 100_ns);
        link.connectTo(sink);
        link.setDegraded(0.5, SimTime(), seed);
        for (int i = 0; i < 64; ++i) {
            sim.schedule(SimTime::us(10 * i),
                         [&] { link.transmit(udpPacket(100)); });
        }
        sim.run();
        std::vector<SimTime> times;
        for (auto &[t, p] : sink.arrivals) {
            times.push_back(t);
        }
        return std::make_pair(times, link.degradeDrops());
    };

    auto [a_times, a_drops] = run(7);
    auto [b_times, b_drops] = run(7);
    auto [c_times, c_drops] = run(8);

    EXPECT_EQ(a_times, b_times); // same seed: identical loss pattern
    EXPECT_EQ(a_drops, b_drops);
    EXPECT_GT(a_drops, 0u);             // p=0.5 over 64 frames
    EXPECT_LT(a_drops, 64u);
    EXPECT_NE(a_times, c_times); // different seed: different pattern
}

TEST(LinkFault, ClearDegradedRestoresCleanDelivery)
{
    Simulator sim;
    CollectSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(1), 1_us);
    link.connectTo(sink);

    link.setDegraded(1.0, SimTime(), 3); // loses everything
    sim.schedule(0_ns, [&] { link.transmit(udpPacket(100)); });
    sim.schedule(10_us, [&] { link.clearDegraded(); });
    sim.schedule(20_us, [&] { link.transmit(udpPacket(100)); });
    sim.run();

    EXPECT_EQ(link.degradeDrops(), 1u);
    EXPECT_FALSE(link.degraded());
    ASSERT_EQ(sink.arrivals.size(), 1u);
}

TEST(LossySink, AttributesDropsToOneCauseEach)
{
    Simulator sim;
    CollectSink inner(sim);
    LossySink lossy(inner);

    lossy.dropArrivals({0});
    lossy.dropIf([](const Packet &p) { return p.payload_bytes == 77; });

    for (uint32_t i = 0; i < 4; ++i) {
        lossy.receive(udpPacket(i == 2 ? 77 : 100));
    }

    EXPECT_EQ(lossy.arrivals(), 4u);
    EXPECT_EQ(lossy.droppedByIndex(), 1u);     // arrival 0
    EXPECT_EQ(lossy.droppedByPredicate(), 1u); // the 77-byte packet
    EXPECT_EQ(lossy.droppedRandomly(), 0u);
    EXPECT_EQ(lossy.dropped(), 2u);
    EXPECT_EQ(inner.arrivals.size(), 2u);
}

TEST(LossySink, RandomDropsAreSeedDeterministic)
{
    auto run = [](uint64_t seed) {
        Simulator sim;
        CollectSink inner(sim);
        LossySink lossy(inner);
        lossy.dropRandomly(0.3, seed);
        uint64_t survived_mask = 0;
        for (int i = 0; i < 64; ++i) {
            const uint64_t before = lossy.droppedRandomly();
            lossy.receive(udpPacket(100));
            if (lossy.droppedRandomly() == before) {
                survived_mask |= 1ULL << i;
            }
        }
        return survived_mask;
    };

    EXPECT_EQ(run(11), run(11));
    EXPECT_NE(run(11), run(12));
}

} // namespace
} // namespace net
} // namespace diablo
