#include <gtest/gtest.h>

#include "net/packet.hh"

namespace diablo {
namespace net {
namespace {

TEST(SourceRoute, HopSequence)
{
    SourceRoute r({3, 1, 7});
    EXPECT_EQ(r.hops(), 3u);
    EXPECT_FALSE(r.exhausted());
    EXPECT_EQ(r.hop(), 3);
    r.advance();
    EXPECT_EQ(r.hop(), 1);
    r.advance();
    EXPECT_EQ(r.hop(), 7);
    r.advance();
    EXPECT_TRUE(r.exhausted());
}

TEST(SourceRoute, HeaderBytesOnePerHop)
{
    SourceRoute r({1, 2, 3, 4, 5});
    EXPECT_EQ(r.headerBytes(), 5u);
    EXPECT_EQ(SourceRoute().headerBytes(), 0u);
}

TEST(SourceRoute, Append)
{
    SourceRoute r;
    r.append(9);
    r.append(2);
    EXPECT_EQ(r.hops(), 2u);
    EXPECT_EQ(r.hop(), 9);
}

TEST(SourceRoute, SpillsPastInlineCapacity)
{
    // Routes longer than the inline hop array (deeper than any Clos
    // path we build) must still work via the spill vector.
    SourceRoute r;
    const uint16_t n = SourceRoute::kInlineHops + 4;
    for (uint16_t i = 0; i < n; ++i) {
        r.append(static_cast<uint16_t>(i * 10));
    }
    EXPECT_EQ(r.hops(), n);
    EXPECT_EQ(r.headerBytes(), n);
    for (uint16_t i = 0; i < n; ++i) {
        ASSERT_FALSE(r.exhausted()) << "hop " << i;
        EXPECT_EQ(r.hop(), i * 10);
        r.advance();
    }
    EXPECT_TRUE(r.exhausted());
}

TEST(SourceRoute, ClearResetsSpilledRoute)
{
    SourceRoute r;
    for (uint16_t i = 0; i < SourceRoute::kInlineHops + 2; ++i) {
        r.append(i);
    }
    r.advance();
    r.clear();
    EXPECT_EQ(r.hops(), 0u);
    EXPECT_TRUE(r.exhausted());
    r.append(5);
    EXPECT_EQ(r.hop(), 5);
}

TEST(SourceRouteDeathTest, HopPastEndNamesThePacket)
{
    SourceRoute r({4});
    r.advance(77);
    EXPECT_TRUE(r.exhausted());
    EXPECT_DEATH(r.hop(77), "packet #77");
}

TEST(SourceRouteDeathTest, AdvancePastEndIsFatal)
{
    SourceRoute r;
    EXPECT_DEATH(r.advance(123), "packet #123");
}

TEST(FlowKey, ReversedSwapsEndpoints)
{
    FlowKey k{10, 20, 1000, 11211, Proto::Tcp};
    FlowKey rev = k.reversed();
    EXPECT_EQ(rev.src, 20u);
    EXPECT_EQ(rev.dst, 10u);
    EXPECT_EQ(rev.sport, 11211);
    EXPECT_EQ(rev.dport, 1000);
    EXPECT_EQ(rev.proto, Proto::Tcp);
    EXPECT_EQ(rev.reversed(), k);
}

TEST(FlowKey, HashDistinguishes)
{
    FlowKeyHash h;
    FlowKey a{1, 2, 3, 4, Proto::Tcp};
    FlowKey b{1, 2, 3, 4, Proto::Udp};
    FlowKey c{1, 2, 4, 3, Proto::Tcp};
    EXPECT_NE(h(a), h(b));
    EXPECT_NE(h(a), h(c));
    EXPECT_EQ(h(a), h(FlowKey{1, 2, 3, 4, Proto::Tcp}));
}

TEST(Packet, UniqueIds)
{
    auto a = makePacket();
    auto b = makePacket();
    EXPECT_NE(a->id, 0u);
    EXPECT_NE(a->id, b->id);
}

TEST(Packet, ByteAccounting)
{
    auto p = makePacket();
    p->flow.proto = Proto::Udp;
    p->payload_bytes = 100;
    // UDP: 100 + 8 + 20 = 128 L3 bytes.
    EXPECT_EQ(p->l3Bytes(), 128u);
    EXPECT_EQ(p->wireBytes(), 128u + 38u);

    p->flow.proto = Proto::Tcp;
    // TCP: 100 + 20 + 20 = 140 L3 bytes.
    EXPECT_EQ(p->l3Bytes(), 140u);

    p->route = SourceRoute({1, 2});
    EXPECT_EQ(p->l3Bytes(), 142u);
}

TEST(Packet, MinimumFramePadding)
{
    auto p = makePacket();
    p->flow.proto = Proto::Udp;
    p->payload_bytes = 0;
    // 28B L3 datagram pads to the 46B minimum payload -> 84 wire bytes.
    EXPECT_EQ(p->wireBytes(), 84u);
}

TEST(Packet, TcpFlagTest)
{
    TcpFields t;
    t.flags = tcp_flags::kSyn | tcp_flags::kAck;
    EXPECT_TRUE(t.has(tcp_flags::kSyn));
    EXPECT_TRUE(t.has(tcp_flags::kAck));
    EXPECT_FALSE(t.has(tcp_flags::kFin));
}

} // namespace
} // namespace net
} // namespace diablo
