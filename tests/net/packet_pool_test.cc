#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "net/packet.hh"

namespace diablo {
namespace net {
namespace {

using namespace diablo::time_literals;

struct Marker : AppData {
    int tag = 0;
};

/** Dirty every model-visible field a previous life could have set. */
void
dirtyPacket(Packet &p)
{
    p.flow = FlowKey{7, 9, 1234, 80, Proto::Tcp};
    p.tcp.seq = 111;
    p.tcp.ack = 222;
    p.tcp.flags = tcp_flags::kSyn | tcp_flags::kFin;
    p.tcp.window = 333;
    p.payload_bytes = 1460;
    p.dgram_id = 42;
    p.dgram_bytes = 9000;
    p.frag_idx = 3;
    p.frag_count = 7;
    p.route = SourceRoute({1, 2, 3, 4, 5});
    p.route.advance();
    p.app = std::make_shared<Marker>();
    p.created = 5_us;
    p.first_bit = 6_us;
    p.last_bit = 7_us;
    p.hop_count = 4;
}

TEST(PacketPool, RecyclesToOriginAndCountsIt)
{
    Simulator sim;
    EXPECT_EQ(packetPoolIfAttached(sim), nullptr);

    auto p = makePacket(sim);
    const Packet *raw = p.get();
    PacketPool *pool = packetPoolIfAttached(sim);
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(p->pool, pool);
    EXPECT_EQ(pool->makes(), 1u);
    EXPECT_EQ(pool->heapAllocs(), 1u);
    EXPECT_EQ(pool->returns(), 0u);

    p.reset(); // dies -> freelist, not the heap
    EXPECT_EQ(pool->returns(), 1u);

    auto q = makePacket(sim);
    EXPECT_EQ(q.get(), raw); // warm slab reused
    EXPECT_EQ(pool->makes(), 2u);
    EXPECT_EQ(pool->recycles(), 1u);
    EXPECT_EQ(pool->heapAllocs(), 1u);
}

TEST(PacketPool, RecycledPacketIsFactoryFresh)
{
    Simulator sim;
    auto p = makePacket(sim);
    const uint64_t old_id = p->id;
    dirtyPacket(*p);
    p.reset();

    auto q = makePacket(sim);
    EXPECT_NE(q->id, 0u);
    EXPECT_NE(q->id, old_id);
    const FlowKey fresh;
    EXPECT_EQ(q->flow.src, fresh.src);
    EXPECT_EQ(q->flow.dst, fresh.dst);
    EXPECT_EQ(q->flow.sport, fresh.sport);
    EXPECT_EQ(q->flow.dport, fresh.dport);
    EXPECT_EQ(q->tcp.seq, 0u);
    EXPECT_EQ(q->tcp.ack, 0u);
    EXPECT_EQ(q->tcp.flags, 0);
    EXPECT_EQ(q->tcp.window, 0u);
    EXPECT_EQ(q->payload_bytes, 0u);
    EXPECT_EQ(q->dgram_id, 0u);
    EXPECT_EQ(q->dgram_bytes, 0u);
    EXPECT_EQ(q->frag_idx, 0);
    EXPECT_EQ(q->frag_count, 1);
    EXPECT_EQ(q->route.hops(), 0u);
    EXPECT_TRUE(q->route.exhausted());
    EXPECT_EQ(q->app, nullptr);
    EXPECT_EQ(q->created, SimTime());
    EXPECT_EQ(q->first_bit, SimTime());
    EXPECT_EQ(q->last_bit, SimTime());
    EXPECT_EQ(q->hop_count, 0u);
}

TEST(PacketPool, RecycleReleasesAppDataImmediately)
{
    // The pool must not pin application metadata until the slab's next
    // reuse: the shared_ptr drops at recycle time.
    Simulator sim;
    auto marker = std::make_shared<Marker>();
    std::weak_ptr<const AppData> watch = marker;
    auto p = makePacket(sim);
    p->app = std::move(marker);
    p.reset();
    EXPECT_TRUE(watch.expired());
}

TEST(PacketPool, HighWaterTracksConcurrentlyLivePackets)
{
    Simulator sim;
    auto a = makePacket(sim);
    auto b = makePacket(sim);
    auto c = makePacket(sim);
    PacketPool *pool = packetPoolIfAttached(sim);
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->highWater(), 3u);
    a.reset();
    b.reset();
    c.reset();
    auto d = makePacket(sim);
    EXPECT_EQ(pool->highWater(), 3u); // one live again: no new peak
    EXPECT_EQ(pool->heapAllocs(), 3u);
}

TEST(PacketPool, PacketDyingElsewhereReturnsHome)
{
    // A packet made by partition A's pool but dropped while owned by
    // partition B's structures must recycle to A (origin pool), keeping
    // each pool's memory bounded under one-way flows.
    Simulator a, b;
    auto p = makePacket(a);
    const Packet *raw = p.get();
    (void)makePacket(b); // give B a pool of its own
    PacketPool *pool_a = packetPoolIfAttached(a);
    PacketPool *pool_b = packetPoolIfAttached(b);
    const uint64_t b_returns_before = pool_b->returns();

    p.reset(); // "drop in B": PacketPtr death site doesn't matter
    EXPECT_EQ(pool_a->returns(), 1u);
    EXPECT_EQ(pool_b->returns(), b_returns_before);
    auto q = makePacket(a);
    EXPECT_EQ(q.get(), raw);
}

TEST(PacketPool, SteadyStateLoopNeverReallocates)
{
    Simulator sim;
    for (int i = 0; i < 1000; ++i) {
        auto p = makePacket(sim);
        dirtyPacket(*p);
    }
    PacketPool *pool = packetPoolIfAttached(sim);
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->makes(), 1000u);
    EXPECT_EQ(pool->heapAllocs(), 1u);
    EXPECT_EQ(pool->recycles(), 999u);
    EXPECT_EQ(pool->highWater(), 1u);
}

TEST(PacketPool, PlainHeapPacketsBypassThePool)
{
    auto p = makePacket();
    EXPECT_EQ(p->pool, nullptr);
    // Destruction must plain-delete (exercised under the sanitizers).
}

} // namespace
} // namespace net
} // namespace diablo
