#include <gtest/gtest.h>

#include <vector>

#include "net/link.hh"

namespace diablo {
namespace net {
namespace {

using namespace diablo::time_literals;

class CollectSink : public PacketSink {
  public:
    explicit CollectSink(Simulator &sim) : sim_(sim) {}

    void
    receive(PacketPtr p) override
    {
        arrivals.emplace_back(sim_.now(), std::move(p));
    }

    std::vector<std::pair<SimTime, PacketPtr>> arrivals;

  private:
    Simulator &sim_;
};

PacketPtr
udpPacket(uint32_t payload)
{
    auto p = makePacket();
    p->flow.proto = Proto::Udp;
    p->payload_bytes = payload;
    return p;
}

TEST(Link, DeliversAfterSerializationAndPropagation)
{
    Simulator sim;
    CollectSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(1), 1_us);
    link.connectTo(sink);

    auto p = udpPacket(1462); // 1462+8+20 = 1490 L3, 1528 wire bytes
    const uint32_t wire = p->wireBytes();
    sim.schedule(0_ns, [&, wire] {
        (void)wire;
    });
    sim.run();

    sim.schedule(0_ns, [&] { link.transmit(std::move(p)); });
    sim.run();

    ASSERT_EQ(sink.arrivals.size(), 1u);
    // 1528 B at 1 Gbps = 12.224 us serialization + 1 us propagation.
    SimTime expect = Bandwidth::gbps(1).transferTime(wire) + 1_us;
    EXPECT_EQ(sink.arrivals[0].first, expect);
    EXPECT_EQ(sink.arrivals[0].second->first_bit, 1_us);
    EXPECT_EQ(sink.arrivals[0].second->last_bit, expect);
}

TEST(Link, BusyDuringSerialization)
{
    Simulator sim;
    CollectSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(1), 0_ns);
    link.connectTo(sink);

    sim.schedule(0_ns, [&] {
        link.transmit(udpPacket(1000));
        EXPECT_TRUE(link.busy());
    });
    sim.run();
    EXPECT_FALSE(link.busy());
    EXPECT_EQ(link.packetsSent(), 1u);
}

TEST(Link, TxDoneCallbackFiresAtSerializationEnd)
{
    Simulator sim;
    CollectSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(10), 5_us);
    link.connectTo(sink);

    SimTime done_at;
    link.setTxDoneCallback([&] { done_at = sim.now(); });

    PacketPtr p = udpPacket(472); // 472+28 = 500 L3 -> 538 wire bytes
    SimTime expect_ser = Bandwidth::gbps(10).transferTime(538);
    sim.schedule(0_ns, [&] { link.transmit(std::move(p)); });
    sim.run();

    EXPECT_EQ(done_at, expect_ser);
    // Delivery still happens 5 us after serialization completes.
    ASSERT_EQ(sink.arrivals.size(), 1u);
    EXPECT_EQ(sink.arrivals[0].first, expect_ser + 5_us);
}

TEST(Link, BackToBackTransmissions)
{
    Simulator sim;
    CollectSink sink(sim);
    Link link(sim, "l0", Bandwidth::mbps(100), 0_ns);
    link.connectTo(sink);

    int sent = 0;
    std::function<void()> sendNext = [&] {
        if (sent < 3) {
            ++sent;
            link.transmit(udpPacket(972)); // 1000 L3 -> 1038 wire
        }
    };
    link.setTxDoneCallback(sendNext);
    sim.schedule(0_ns, sendNext);
    sim.run();

    ASSERT_EQ(sink.arrivals.size(), 3u);
    SimTime per = Bandwidth::mbps(100).transferTime(1038);
    EXPECT_EQ(sink.arrivals[0].first, per);
    EXPECT_EQ(sink.arrivals[1].first, per * 2);
    EXPECT_EQ(sink.arrivals[2].first, per * 3);
    EXPECT_EQ(link.bytesSent(), 3u * 1038u);
}

TEST(Link, UtilizationAccounting)
{
    Simulator sim;
    CollectSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(1), 0_ns);
    link.connectTo(sink);

    sim.schedule(0_ns, [&] { link.transmit(udpPacket(1462)); });
    // Let the sim idle out to 2x the serialization time.
    SimTime ser = Bandwidth::gbps(1).transferTime(1528);
    sim.scheduleAt(ser * 2, [] {});
    sim.run();
    EXPECT_NEAR(link.utilization(), 0.5, 1e-9);
}

} // namespace
} // namespace net
} // namespace diablo
