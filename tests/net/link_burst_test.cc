#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/link.hh"

namespace diablo {
namespace net {
namespace {

using namespace diablo::time_literals;

/** Records (arrival time, packet id, payload) for every delivery. */
class RecordSink : public PacketSink {
  public:
    explicit RecordSink(Simulator &sim) : sim_(sim) {}

    void
    receive(PacketPtr p) override
    {
        arrivals.push_back({sim_.now(), p->payload_bytes, p->last_bit});
    }

    struct Arrival {
        SimTime at;
        uint32_t payload;
        SimTime last_bit;

        bool
        operator==(const Arrival &o) const
        {
            return at == o.at && payload == o.payload &&
                   last_bit == o.last_bit;
        }
    };

    std::vector<Arrival> arrivals;

  private:
    Simulator &sim_;
};

PacketPtr
udpPacket(uint32_t payload)
{
    auto p = makePacket();
    p->flow.proto = Proto::Udp;
    p->payload_bytes = payload;
    return p;
}

/**
 * Drive a back-to-back burst: each tx-done immediately transmits the
 * next frame, exactly as a saturated NIC or switch egress would.
 * Returns every delivery the sink observed.
 */
std::vector<RecordSink::Arrival>
runBurst(bool coalesce, uint32_t n_pkts, SimTime propagation)
{
    Simulator sim;
    RecordSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(1), propagation);
    link.setDeliveryCoalescing(coalesce);
    link.connectTo(sink);

    uint32_t sent = 0;
    auto sendNext = [&] {
        if (sent < n_pkts) {
            // Distinct sizes so a reordered or merged delivery would
            // change the observed (time, payload) pairs.
            link.transmit(udpPacket(100 + 10 * sent));
            ++sent;
        }
    };
    link.setTxDoneCallback(sendNext);
    sim.schedule(0_ns, sendNext);
    sim.run();

    EXPECT_EQ(sent, n_pkts);
    EXPECT_EQ(sink.arrivals.size(), n_pkts);
    if (!coalesce) {
        EXPECT_EQ(link.deliveriesCoalesced(), 0u);
    } else if (propagation > Bandwidth::gbps(1).transferTime(2000)) {
        // With propagation exceeding serialization the next frame is
        // committed while the previous delivery is still in flight, so
        // the whole burst rides one armed walker instead of each
        // delivery scheduling an event of its own.  (At zero
        // propagation the walker legitimately drains between frames.)
        EXPECT_GT(link.deliveriesCoalesced(), 0u);
        EXPECT_LT(link.deliveryTrains(), n_pkts);
    }
    return sink.arrivals;
}

TEST(LinkBurst, CoalescingPreservesPerPacketDeliveryTimes)
{
    // The tentpole invariant: coalesced trains are a scheduling
    // optimization only — every packet's delivery instant and byte
    // bookkeeping must be bit-identical to the uncoalesced engine.
    for (SimTime prop : {SimTime(10_us), SimTime(1_us), SimTime(0_ns)}) {
        auto plain = runBurst(false, 32, prop);
        auto trains = runBurst(true, 32, prop);
        EXPECT_EQ(plain.size(), trains.size());
        for (size_t i = 0; i < plain.size(); ++i) {
            EXPECT_EQ(plain[i], trains[i])
                << "packet " << i << " prop=" << prop.str();
        }
    }
}

TEST(LinkBurst, ArrivalsAreInOrderAndStrictlyIncreasing)
{
    auto a = runBurst(true, 16, 5_us);
    for (size_t i = 1; i < a.size(); ++i) {
        EXPECT_LT(a[i - 1].at, a[i].at);
        EXPECT_EQ(a[i].payload, 100u + 10 * i); // FIFO order kept
    }
}

TEST(LinkBurst, IdleLinkStartsAFreshTrain)
{
    Simulator sim;
    RecordSink sink(sim);
    Link link(sim, "l0", Bandwidth::gbps(1), 1_us);
    link.connectTo(sink);

    sim.schedule(0_ns, [&] { link.transmit(udpPacket(100)); });
    sim.schedule(1_ms, [&] { link.transmit(udpPacket(200)); });
    sim.run();

    ASSERT_EQ(sink.arrivals.size(), 2u);
    // Two widely separated sends: two trains, nothing to coalesce.
    EXPECT_EQ(link.deliveryTrains(), 2u);
    EXPECT_EQ(link.deliveriesCoalesced(), 0u);
}

TEST(LinkBurst, FaultedDeliveriesMatchUncoalesced)
{
    // Brownout extra latency rides the same delivery path; degraded
    // frames must arrive at identical times in both modes.
    auto run = [](bool coalesce) {
        Simulator sim;
        RecordSink sink(sim);
        Link link(sim, "l0", Bandwidth::gbps(1), 2_us);
        link.setDeliveryCoalescing(coalesce);
        link.connectTo(sink);
        // Loss probability 0 so the comparison sees every frame; the
        // extra latency path is what's under test.
        sim.schedule(0_ns, [&] { link.setDegraded(0.0, 3_us, 1); });
        uint32_t sent = 0;
        auto sendNext = [&] {
            if (sent < 8) {
                link.transmit(udpPacket(400 + 10 * sent));
                ++sent;
            }
        };
        link.setTxDoneCallback(sendNext);
        sim.schedule(1_us, sendNext);
        sim.run();
        return sink.arrivals;
    };
    auto plain = run(false);
    auto trains = run(true);
    ASSERT_EQ(plain.size(), 8u);
    EXPECT_EQ(plain, trains);
}

} // namespace
} // namespace net
} // namespace diablo
