#include <gtest/gtest.h>

#include "apps/mc_experiment.hh"

namespace diablo {
namespace apps {
namespace {

using namespace diablo::time_literals;

McExperimentParams
tinyExperiment(bool udp)
{
    McExperimentParams p;
    p.cluster = sim::ClusterParams::gige1us();
    p.cluster.topo.servers_per_rack = 8;
    p.cluster.topo.racks_per_array = 2;
    p.cluster.topo.num_arrays = 2; // 32 nodes, exercises all 3 levels
    p.num_servers = 4;
    p.server.udp = udp;
    p.server.worker_threads = 2;
    p.client.udp = udp;
    p.client.requests = 20;
    p.client.think_mean = 200_us;
    p.client.workload.keys_per_server = 500;
    return p;
}

TEST(Memcached, UdpExperimentCompletes)
{
    Simulator sim;
    McExperiment exp(sim, tinyExperiment(true));
    exp.run();
    const McExperimentResult &r = exp.result();
    EXPECT_EQ(r.clients, 28u);
    EXPECT_EQ(r.servers, 4u);
    // Every request either completed or timed out after retries.
    EXPECT_EQ(r.requests_completed + r.udp_timeouts, 28u * 20u);
    EXPECT_GT(r.requests_completed, 27u * 20u); // near-lossless tiny run
    EXPECT_GT(r.latency_us.count(), 0u);
}

TEST(Memcached, TcpExperimentCompletes)
{
    Simulator sim;
    McExperiment exp(sim, tinyExperiment(false));
    exp.run();
    const McExperimentResult &r = exp.result();
    EXPECT_EQ(r.requests_completed, 28u * 20u);
    EXPECT_EQ(r.udp_timeouts, 0u);
}

TEST(Memcached, LatenciesAreMicrosecondScaleWithTail)
{
    Simulator sim;
    McExperiment exp(sim, tinyExperiment(true));
    exp.run();
    const SampleSet &lat = exp.result().latency_us;
    // The bulk finishes in well under a millisecond on an unloaded
    // 1 Gbps fabric.
    EXPECT_GT(lat.percentile(50), 20.0);
    EXPECT_LT(lat.percentile(50), 1000.0);
    EXPECT_GE(lat.max(), lat.percentile(50));
}

TEST(Memcached, HopClassesAllObservedAndOrdered)
{
    Simulator sim;
    McExperiment exp(sim, tinyExperiment(true));
    exp.run();
    const McExperimentResult &r = exp.result();
    const SampleSet &local = r.latency_us_by_hop[0];
    const SampleSet &onehop = r.latency_us_by_hop[1];
    const SampleSet &twohop = r.latency_us_by_hop[2];
    ASSERT_GT(local.count(), 0u);
    ASSERT_GT(onehop.count(), 0u);
    ASSERT_GT(twohop.count(), 0u);
    // Medians ordered by hop count on an unloaded fabric.
    EXPECT_LT(local.percentile(50), onehop.percentile(50));
    EXPECT_LT(onehop.percentile(50), twohop.percentile(50));
}

TEST(Memcached, ServerPlacementSpreadsAcrossRacks)
{
    Simulator sim;
    McExperimentParams p = tinyExperiment(true);
    McExperiment exp(sim, p);
    // 4 servers over 4 racks -> one per rack.
    const auto &nodes = exp.serverNodes();
    ASSERT_EQ(nodes.size(), 4u);
    std::set<uint32_t> racks;
    for (net::NodeId n : nodes) {
        racks.insert(exp.cluster().network().rackOf(n));
    }
    EXPECT_EQ(racks.size(), 4u);
}

TEST(Memcached, VersionChangesAcceptCost)
{
    // 1.4.17 (accept4) must use less CPU per TCP connection than 1.4.15;
    // observable as lower total server busy time on identical runs.
    auto serverBusy = [](int version) {
        Simulator sim;
        McExperimentParams p = tinyExperiment(false);
        p.server.version = version;
        McExperiment exp(sim, p);
        exp.run();
        SimTime busy;
        for (net::NodeId s : exp.serverNodes()) {
            busy += exp.cluster().kernel(s).cpu().totalBusyTime();
        }
        return busy;
    };
    SimTime old_busy = serverBusy(1415);
    SimTime new_busy = serverBusy(1417);
    EXPECT_LT(new_busy, old_busy);
}

TEST(Memcached, Deterministic)
{
    auto run = [] {
        Simulator sim;
        McExperiment exp(sim, tinyExperiment(true));
        exp.run();
        return std::pair(exp.result().latency_us.mean(),
                         exp.result().elapsed.toPs());
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace apps
} // namespace diablo
