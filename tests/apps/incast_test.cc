#include <gtest/gtest.h>

#include "apps/incast.hh"

namespace diablo {
namespace apps {
namespace {

using namespace diablo::time_literals;

sim::ClusterParams
rackCluster(uint32_t servers_per_rack)
{
    sim::ClusterParams p = sim::ClusterParams::gige1us();
    p.topo.servers_per_rack = servers_per_rack;
    p.topo.racks_per_array = 1;
    p.topo.num_arrays = 1;
    return p;
}

IncastResult
runIncast(uint32_t num_servers, bool use_epoll, uint64_t block_bytes,
          uint32_t iterations, uint64_t buffer_bytes = 4096)
{
    Simulator sim;
    sim::ClusterParams cp = rackCluster(num_servers + 1);
    cp.topo.rack_sw.buffer_per_port_bytes = buffer_bytes;
    sim::Cluster cluster(sim, cp);

    IncastParams ip;
    ip.block_bytes = block_bytes;
    ip.iterations = iterations;
    ip.use_epoll = use_epoll;
    std::vector<net::NodeId> servers;
    for (uint32_t i = 1; i <= num_servers; ++i) {
        servers.push_back(i);
    }
    IncastApp app(cluster, ip, 0, servers);
    app.install();
    sim.run();
    EXPECT_TRUE(app.result().done);
    return app.result();
}

TEST(Incast, SingleServerNearLineRate)
{
    IncastResult r = runIncast(1, false, 262144, 5);
    // One sender, no congestion: goodput close to 1 Gbps line rate.
    EXPECT_GT(r.goodputMbps(), 600.0);
    EXPECT_LT(r.goodputMbps(), 1000.0);
}

TEST(Incast, ThroughputCollapseWithManySenders)
{
    IncastResult one = runIncast(1, false, 262144, 5);
    IncastResult many = runIncast(8, false, 262144, 5);
    // Classic incast through shallow 4 KB VOQ partitions: concurrent
    // senders collapse to a tiny fraction of the single-sender goodput
    // (the paper's model collapses faster than shared-buffer hardware).
    EXPECT_GT(one.goodputMbps(), 600.0);
    EXPECT_LT(many.goodputMbps(), one.goodputMbps() / 10.0);
    // Collapse is RTO-driven: retransmission timeouts must have fired.
    EXPECT_GT(many.iteration_us.max(), 150000.0); // >= one RTO stall
}

TEST(Incast, DeepBuffersAvoidCollapse)
{
    IncastResult shallow = runIncast(12, false, 262144, 3, 4096);
    IncastResult deep = runIncast(12, false, 262144, 3, 1 << 20);
    EXPECT_GT(deep.goodputMbps(), 2.0 * shallow.goodputMbps());
    EXPECT_GT(deep.goodputMbps(), 500.0);
}

TEST(Incast, EpollClientCompletes)
{
    // Deep buffers so this checks the epoll client logic, not collapse.
    IncastResult r = runIncast(4, true, 65536, 3, 1 << 20);
    EXPECT_TRUE(r.done);
    EXPECT_EQ(r.total_bytes, 4u * 65536u * 3u);
    EXPECT_EQ(r.iteration_us.count(), 3u);
    EXPECT_GT(r.goodputMbps(), 300.0);
}

TEST(Incast, IterationTimesRecorded)
{
    IncastResult r = runIncast(2, false, 65536, 4);
    EXPECT_EQ(r.iteration_us.count(), 4u);
    EXPECT_GT(r.iteration_us.min(), 0.0);
}

TEST(Incast, Deterministic)
{
    IncastResult a = runIncast(6, false, 131072, 3);
    IncastResult b = runIncast(6, false, 131072, 3);
    EXPECT_DOUBLE_EQ(a.goodputMbps(), b.goodputMbps());
    EXPECT_EQ(a.elapsed, b.elapsed);
}

} // namespace
} // namespace apps
} // namespace diablo
