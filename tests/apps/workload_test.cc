#include <gtest/gtest.h>

#include "apps/workload.hh"

namespace diablo {
namespace apps {
namespace {

TEST(EtcWorkload, KeySizesInRange)
{
    EtcWorkloadParams p;
    EtcWorkload w(p, Rng(1));
    for (int i = 0; i < 5000; ++i) {
        GeneratedRequest g = w.next(0);
        ASSERT_GE(g.key_bytes, p.key_min);
        ASSERT_LE(g.key_bytes, p.key_max);
    }
}

TEST(EtcWorkload, ValueSizesInRangeAndHeavyTailed)
{
    EtcWorkloadParams p;
    EtcWorkload w(p, Rng(2));
    uint64_t small = 0, large = 0;
    for (int i = 0; i < 20000; ++i) {
        GeneratedRequest g = w.next(0);
        ASSERT_GE(g.value_bytes, p.value_min);
        ASSERT_LE(g.value_bytes, p.value_max);
        if (g.value_bytes <= 64) {
            ++small;
        }
        if (g.value_bytes >= 2000) {
            ++large;
        }
    }
    // The ETC mix has many small values AND a heavy tail.
    EXPECT_GT(small, 2000u);
    EXPECT_GT(large, 100u);
}

TEST(EtcWorkload, GetRatioApproximately30To1)
{
    EtcWorkloadParams p;
    EtcWorkload w(p, Rng(3));
    int gets = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        gets += w.next(0).is_get;
    }
    EXPECT_NEAR(static_cast<double>(gets) / n, 30.0 / 31.0, 0.01);
}

TEST(EtcWorkload, ValueSizeDeterministicPerServerKey)
{
    EtcWorkloadParams p;
    EtcWorkload w(p, Rng(4));
    EXPECT_EQ(w.valueSizeFor(5, 123), w.valueSizeFor(5, 123));
    // Different keys/servers should usually differ.
    int diffs = 0;
    for (uint64_t k = 0; k < 100; ++k) {
        if (w.valueSizeFor(1, k) != w.valueSizeFor(2, k)) {
            ++diffs;
        }
    }
    EXPECT_GT(diffs, 50);
}

TEST(EtcWorkload, PopularKeysDominate)
{
    EtcWorkloadParams p;
    p.keys_per_server = 1000;
    EtcWorkload w(p, Rng(5));
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 50000; ++i) {
        counts[w.next(0).key_id]++;
    }
    // Zipf 0.99: rank 0 should far exceed rank 500.
    EXPECT_GT(counts[0], 20 * std::max(counts[500], 1));
}

TEST(EtcWorkload, StreamsWithSameSeedMatch)
{
    EtcWorkloadParams p;
    EtcWorkload a(p, Rng(9)), b(p, Rng(9));
    for (int i = 0; i < 100; ++i) {
        GeneratedRequest ga = a.next(3), gb = b.next(3);
        ASSERT_EQ(ga.key_id, gb.key_id);
        ASSERT_EQ(ga.key_bytes, gb.key_bytes);
        ASSERT_EQ(ga.value_bytes, gb.value_bytes);
        ASSERT_EQ(ga.is_get, gb.is_get);
    }
}

} // namespace
} // namespace apps
} // namespace diablo
