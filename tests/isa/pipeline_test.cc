#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/pipeline.hh"

namespace diablo {
namespace isa {
namespace {

const char *kSumLoop = R"(
    addi r1, r0, 0
    addi r2, r0, 1
    addi r3, r0, 101
loop:
    add  r1, r1, r2
    addi r2, r2, 1
    blt  r2, r3, loop
    halt
)";

TEST(HostPipeline, SingleThreadMatchesFunctionalModel)
{
    TimingModel tm;
    HostPipeline pipe(1, 64, tm, PipelineParams{0});
    pipe.load(0, assemble(kSumLoop));
    pipe.runToCompletion();

    CpuState ref;
    Program p = assemble(kSumLoop);
    TargetMemory mem(64);
    runToHalt(ref, p, mem);

    EXPECT_EQ(pipe.state(0).regs[1], ref.regs[1]);
    EXPECT_EQ(pipe.state(0).instret, ref.instret);
    EXPECT_EQ(pipe.state(0).regs[1], 5050u);
}

TEST(HostPipeline, FixedCpiTargetCycles)
{
    // All-ALU program with CPI=1: target cycles == instructions.
    TimingModel tm;
    HostPipeline pipe(1, 64, tm, PipelineParams{0});
    pipe.load(0, assemble(kSumLoop));
    pipe.runToCompletion();
    EXPECT_EQ(pipe.state(0).target_cycle, pipe.state(0).instret);
}

TEST(HostPipeline, TimingModelIsConfigurable)
{
    // Same program, 2-cycle ALU: target time doubles, function doesn't.
    TimingModel fast, slow;
    slow.alu_cycles = 2;
    slow.branch_cycles = 2;
    slow.mem_cycles = 2;
    slow.trap_cycles = 2;

    HostPipeline a(1, 64, fast, PipelineParams{0});
    a.load(0, assemble(kSumLoop));
    a.runToCompletion();
    HostPipeline b(1, 64, slow, PipelineParams{0});
    b.load(0, assemble(kSumLoop));
    b.runToCompletion();

    EXPECT_EQ(a.state(0).regs[1], b.state(0).regs[1]);
    EXPECT_EQ(b.state(0).target_cycle, 2 * a.state(0).target_cycle);
    // Host time is unchanged: timing is virtual, not host execution.
    EXPECT_EQ(a.hostCycles(), b.hostCycles());
}

TEST(HostPipeline, MultithreadingSharesThePipeline)
{
    // T identical threads take ~T times the host cycles of one (without
    // stalls there is no idle slot to reclaim).
    TimingModel tm;
    HostPipeline one(1, 64, tm, PipelineParams{0});
    one.load(0, assemble(kSumLoop));
    uint64_t host_one = one.runToCompletion();

    const uint32_t T = 8;
    HostPipeline many(T, 64, tm, PipelineParams{0});
    for (uint32_t t = 0; t < T; ++t) {
        many.load(t, assemble(kSumLoop));
    }
    uint64_t host_many = many.runToCompletion();

    EXPECT_EQ(host_many, T * host_one);
    for (uint32_t t = 0; t < T; ++t) {
        EXPECT_EQ(many.state(t).regs[1], 5050u);
    }
}

const char *kMemLoop = R"(
    addi r2, r0, 0
    addi r3, r0, 50
loop:
    st   r2, 0(r5)
    ld   r4, 0(r5)
    addi r2, r2, 1
    blt  r2, r3, loop
    halt
)";

TEST(HostPipeline, MultithreadingHidesMemoryStalls)
{
    // With host DRAM stalls, a single thread leaves the pipeline idle;
    // many threads fill those slots (the paper's core FAME-7 argument).
    TimingModel tm;
    PipelineParams pp;
    pp.host_mem_stall_cycles = 16;

    HostPipeline one(1, 64, tm, pp);
    one.load(0, assemble(kMemLoop));
    one.runToCompletion();
    const double util_one = one.utilization();

    const uint32_t T = 32;
    HostPipeline many(T, 64, tm, pp);
    for (uint32_t t = 0; t < T; ++t) {
        many.load(t, assemble(kMemLoop));
    }
    many.runToCompletion();
    const double util_many = many.utilization();

    EXPECT_LT(util_one, 0.35);
    EXPECT_GT(util_many, 0.90);
    // Aggregate throughput (instrs/host-cycle) improves accordingly.
    EXPECT_GT(util_many / util_one, 3.0);
}

TEST(HostPipeline, HaltedThreadsFreeTheirSlots)
{
    // One short and one long program: once the short one halts, the
    // long one gets every slot.
    TimingModel tm;
    HostPipeline pipe(2, 64, tm, PipelineParams{0});
    pipe.load(0, assemble("addi r1, r0, 1\nhalt\n"));
    pipe.load(1, assemble(kSumLoop));
    uint64_t host = pipe.runToCompletion();

    CpuState ref;
    Program p = assemble(kSumLoop);
    TargetMemory mem(64);
    runToHalt(ref, p, mem);
    // 2 cycles of the short program interleaved, rest dedicated.
    EXPECT_LE(host, ref.instret + 2 * 2 + 2);
}

TEST(HostPipeline, RunInChunksMatchesRunToCompletion)
{
    TimingModel tm;
    HostPipeline a(4, 64, tm);
    HostPipeline b(4, 64, tm);
    for (uint32_t t = 0; t < 4; ++t) {
        a.load(t, assemble(kMemLoop));
        b.load(t, assemble(kMemLoop));
    }
    a.runToCompletion();
    while (!b.allHalted()) {
        b.run(7); // odd chunk size on purpose
    }
    for (uint32_t t = 0; t < 4; ++t) {
        EXPECT_EQ(a.state(t).regs[2], b.state(t).regs[2]);
        EXPECT_EQ(a.state(t).instret, b.state(t).instret);
    }
}

} // namespace
} // namespace isa
} // namespace diablo
