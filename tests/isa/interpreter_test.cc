#include <gtest/gtest.h>

#include "isa/assembler.hh"

namespace diablo {
namespace isa {
namespace {

void
runProgram(const std::string &src, CpuState &state, size_t mem_words = 256)
{
    Program p = assemble(src);
    TargetMemory mem(mem_words);
    runToHalt(state, p, mem);
}

TEST(Interpreter, AluBasics)
{
    CpuState s;
    runProgram(R"(
        addi r1, r0, 20
        addi r2, r0, 22
        add  r3, r1, r2
        sub  r4, r3, r1
        mul  r5, r1, r2
        halt
    )", s);
    EXPECT_EQ(s.regs[3], 42u);
    EXPECT_EQ(s.regs[4], 22u);
    EXPECT_EQ(s.regs[5], 440u);
}

TEST(Interpreter, R0IsAlwaysZero)
{
    CpuState s;
    runProgram(R"(
        addi r0, r0, 99
        add  r1, r0, r0
        halt
    )", s);
    EXPECT_EQ(s.reg(0), 0u);
    EXPECT_EQ(s.regs[1], 0u);
}

TEST(Interpreter, LogicAndShifts)
{
    CpuState s;
    runProgram(R"(
        addi r1, r0, 0xF0
        addi r2, r0, 0x0F
        or   r3, r1, r2
        and  r4, r1, r2
        xor  r5, r1, r2
        slli r6, r2, 4
        srli r7, r1, 4
        halt
    )", s);
    EXPECT_EQ(s.regs[3], 0xFFu);
    EXPECT_EQ(s.regs[4], 0u);
    EXPECT_EQ(s.regs[5], 0xFFu);
    EXPECT_EQ(s.regs[6], 0xF0u);
    EXPECT_EQ(s.regs[7], 0x0Fu);
}

TEST(Interpreter, SraSignExtends)
{
    CpuState s;
    runProgram(R"(
        addi r1, r0, -16
        addi r2, r0, 2
        sra  r3, r1, r2
        halt
    )", s);
    EXPECT_EQ(static_cast<int32_t>(s.regs[3]), -4);
}

TEST(Interpreter, LuiBuildsHighBits)
{
    CpuState s;
    runProgram(R"(
        lui  r1, 0x1234
        ori  r1, r1, 0x5678
        halt
    )", s);
    EXPECT_EQ(s.regs[1], 0x12345678u);
}

TEST(Interpreter, LoadStore)
{
    CpuState s;
    runProgram(R"(
        addi r1, r0, 64
        addi r2, r0, 777
        st   r2, 4(r1)
        ld   r3, 4(r1)
        halt
    )", s);
    EXPECT_EQ(s.regs[3], 777u);
}

TEST(Interpreter, LoopComputesSum)
{
    // sum 1..10 = 55
    CpuState s;
    runProgram(R"(
        addi r1, r0, 0    # sum
        addi r2, r0, 1    # i
        addi r3, r0, 11   # bound
    loop:
        add  r1, r1, r2
        addi r2, r2, 1
        blt  r2, r3, loop
        add  r10, r1, r0
        halt
    )", s);
    EXPECT_EQ(s.regs[10], 55u);
}

TEST(Interpreter, CallAndReturn)
{
    CpuState s;
    runProgram(R"(
        addi r2, r0, 5
        jal  r31, double
        add  r10, r3, r0
        halt
    double:
        add  r3, r2, r2
        jr   r31
    )", s);
    EXPECT_EQ(s.regs[10], 10u);
}

TEST(Interpreter, FibonacciViaMemory)
{
    // Iterative fib(12) = 144 stored/loaded through memory.
    CpuState s;
    runProgram(R"(
        addi r1, r0, 0     # fib(0)
        addi r2, r0, 1     # fib(1)
        st   r1, 0(r0)
        st   r2, 4(r0)
        addi r5, r0, 2     # i
        addi r6, r0, 13
    loop:
        slli r7, r5, 2     # addr = i*4
        ld   r8, -8(r7)
        ld   r9, -4(r7)
        add  r10, r8, r9
        st   r10, 0(r7)
        addi r5, r5, 1
        blt  r5, r6, loop
        addi r7, r0, 48    # fib(12) at 12*4
        ld   r11, 0(r7)
        halt
    )", s);
    EXPECT_EQ(s.regs[11], 144u);
}

TEST(Interpreter, EcallConsoleAndExit)
{
    CpuState s;
    runProgram(R"(
        addi r1, r0, 1     # putchar
        addi r2, r0, 72    # 'H'
        ecall
        addi r2, r0, 105   # 'i'
        ecall
        addi r1, r0, 2     # putint
        addi r2, r0, 42
        ecall
        addi r1, r0, 10    # exit
        addi r2, r0, 3
        ecall
    )", s);
    EXPECT_EQ(s.console, "Hi42");
    EXPECT_TRUE(s.halted);
    EXPECT_EQ(s.exit_code, 3);
}

TEST(Interpreter, InstretCounts)
{
    CpuState s;
    runProgram(R"(
        addi r1, r0, 1
        addi r2, r0, 2
        halt
    )", s);
    EXPECT_EQ(s.instret, 3u);
}

TEST(Assembler, RejectsUnknownMnemonic)
{
    EXPECT_DEATH({ assemble("bogus r1, r2, r3\n"); }, "unknown mnemonic");
}

TEST(Assembler, RejectsUndefinedLabel)
{
    EXPECT_DEATH({ assemble("beq r1, r2, nowhere\n"); },
                 "undefined label");
}

TEST(Assembler, RejectsBadRegister)
{
    EXPECT_DEATH({ assemble("add r1, r2, r99\n"); }, "bad register");
}

TEST(Interpreter, PanicsOnOutOfBoundsMemory)
{
    CpuState s;
    Program p = assemble(R"(
        lui r1, 0x7FFF
        ld  r2, 0(r1)
        halt
    )");
    TargetMemory mem(64);
    EXPECT_DEATH(runToHalt(s, p, mem), "beyond memory");
}

} // namespace
} // namespace isa
} // namespace diablo
