#include <gtest/gtest.h>

#include "switchm/voq_switch.hh"
#include "switchm/switch_test_util.hh"

namespace diablo {
namespace switchm {
namespace {

using namespace diablo::time_literals;
using test::CollectSink;
using test::SwitchHarness;
using test::routedPacket;

SwitchParams
gigeParams(uint32_t ports = 4)
{
    SwitchParams p;
    p.name = "tor";
    p.num_ports = ports;
    p.port_bw = Bandwidth::gbps(1);
    p.port_latency = 1_us;
    p.cut_through = true;
    p.buffer_policy = BufferPolicy::Partitioned;
    p.buffer_per_port_bytes = 4096;
    return p;
}

TEST(VoqSwitch, CutThroughForwardingLatency)
{
    Simulator sim;
    SwitchHarness<VoqSwitch> h(sim, gigeParams(), Bandwidth::gbps(1), 0_ns);

    auto p = routedPacket(1, 1462);
    const uint32_t wire = p->wireBytes(); // 1529 (route header adds 1)
    sim.schedule(0_ns, [&h, &p] { h.in_links[0]->transmit(std::move(p)); });
    sim.run();

    ASSERT_EQ(h.sinks[1]->arrivals.size(), 1u);
    // Early delivery at header time (72 B), forwarding latency 1 us,
    // then full egress serialization.
    SimTime header = Bandwidth::gbps(1).transferTime(72);
    SimTime ser = Bandwidth::gbps(1).transferTime(wire);
    EXPECT_EQ(h.sinks[1]->arrivals[0].first, header + 1_us + ser);
    EXPECT_EQ(h.sinks[1]->arrivals[0].second->hop_count, 1u);
    EXPECT_TRUE(h.sinks[1]->arrivals[0].second->route.exhausted());
}

TEST(VoqSwitch, StoreAndForwardLatency)
{
    Simulator sim;
    SwitchParams params = gigeParams();
    params.cut_through = false;
    SwitchHarness<VoqSwitch> h(sim, params, Bandwidth::gbps(1), 0_ns);

    auto p = routedPacket(1, 1462);
    const uint32_t wire = p->wireBytes();
    sim.schedule(0_ns, [&h, &p] { h.in_links[0]->transmit(std::move(p)); });
    sim.run();

    ASSERT_EQ(h.sinks[1]->arrivals.size(), 1u);
    SimTime ser = Bandwidth::gbps(1).transferTime(wire);
    // Full receive, then latency, then egress serialization.
    EXPECT_EQ(h.sinks[1]->arrivals[0].first, ser + 1_us + ser);
}

TEST(VoqSwitch, CutThroughNeverOutrunsIngressBits)
{
    // Ingress at 1 Gbps feeding an egress at 10 Gbps: the egress must not
    // finish before the ingress last bit has arrived.
    Simulator sim;
    SwitchParams params = gigeParams();
    params.port_bw = Bandwidth::gbps(10);
    params.port_latency = 100_ns;
    SwitchHarness<VoqSwitch> h(sim, params, Bandwidth::gbps(1), 0_ns);

    auto p = routedPacket(1, 1462);
    const uint32_t wire = p->wireBytes();
    sim.schedule(0_ns, [&h, &p] { h.in_links[0]->transmit(std::move(p)); });
    sim.run();

    ASSERT_EQ(h.sinks[1]->arrivals.size(), 1u);
    SimTime ingress_last = Bandwidth::gbps(1).transferTime(wire);
    EXPECT_GE(h.sinks[1]->arrivals[0].first, ingress_last);
}

TEST(VoqSwitch, RoundRobinAcrossInputs)
{
    Simulator sim;
    SwitchParams params = gigeParams();
    params.cut_through = false;
    params.port_latency = 0_ns;
    params.buffer_per_port_bytes = 1 << 20; // no drops
    SwitchHarness<VoqSwitch> h(sim, params, Bandwidth::gbps(10), 0_ns);

    // Three packets from input 0 and three from input 1, all to output 3,
    // arriving fast (10 Gbps hosts) relative to the 1 Gbps egress.
    sim.schedule(0_ns, [&h] {
        for (int k = 0; k < 3; ++k) {
            auto a = routedPacket(3, 1000);
            a->flow.src = 100; // tag by source for checking
            h.sw.inPort(0).receive(std::move(a));
            auto b = routedPacket(3, 1000);
            b->flow.src = 200;
            h.sw.inPort(1).receive(std::move(b));
        }
    });
    sim.run();

    ASSERT_EQ(h.sinks[3]->arrivals.size(), 6u);
    // Round robin alternates sources.
    std::vector<net::NodeId> srcs;
    for (auto &[t, pkt] : h.sinks[3]->arrivals) {
        srcs.push_back(pkt->flow.src);
    }
    EXPECT_EQ(srcs, (std::vector<net::NodeId>{100, 200, 100, 200, 100,
                                              200}));
}

TEST(VoqSwitch, ShallowBufferTailDrop)
{
    Simulator sim;
    SwitchParams params = gigeParams();
    params.port_latency = 0_ns;
    SwitchHarness<VoqSwitch> h(sim, params, Bandwidth::gbps(1), 0_ns);

    // Inject 6 full frames directly at t=0; buffer charge per frame is
    // l3 (1462+8+20+1=1491) + 18 = 1509 bytes; 4096-byte budget holds
    // two frames.
    sim.schedule(0_ns, [&h] {
        for (int k = 0; k < 6; ++k) {
            h.sw.inPort(0).receive(routedPacket(1, 1462));
        }
    });
    sim.run();

    EXPECT_EQ(h.sw.stats().forwarded_pkts, 2u);
    EXPECT_EQ(h.sw.stats().dropped_pkts, 4u);
    EXPECT_EQ(h.sw.dropsAt(1), 4u);
    EXPECT_EQ(h.sinks[1]->arrivals.size(), 2u);
}

TEST(VoqSwitch, BufferFreedAfterTransmit)
{
    Simulator sim;
    SwitchParams params = gigeParams();
    params.port_latency = 0_ns;
    SwitchHarness<VoqSwitch> h(sim, params, Bandwidth::gbps(1), 0_ns);

    // Two packets fit; after they drain, two more fit.
    sim.schedule(0_ns, [&h] {
        h.sw.inPort(0).receive(routedPacket(1, 1462));
        h.sw.inPort(0).receive(routedPacket(1, 1462));
    });
    sim.schedule(1_ms, [&h] {
        h.sw.inPort(0).receive(routedPacket(1, 1462));
        h.sw.inPort(0).receive(routedPacket(1, 1462));
    });
    sim.run();
    EXPECT_EQ(h.sw.stats().forwarded_pkts, 4u);
    EXPECT_EQ(h.sw.stats().dropped_pkts, 0u);
    EXPECT_EQ(h.sw.bufferUsed(), 0u);
}

TEST(VoqSwitch, DistinctOutputsDontInterfere)
{
    Simulator sim;
    SwitchParams params = gigeParams();
    params.port_latency = 0_ns;
    SwitchHarness<VoqSwitch> h(sim, params, Bandwidth::gbps(1), 0_ns);

    sim.schedule(0_ns, [&h] {
        h.sw.inPort(0).receive(routedPacket(1, 1000));
        h.sw.inPort(0).receive(routedPacket(2, 1000));
        h.sw.inPort(0).receive(routedPacket(3, 1000));
    });
    sim.run();

    // All three depart in parallel on separate egress links.
    ASSERT_EQ(h.sinks[1]->arrivals.size(), 1u);
    ASSERT_EQ(h.sinks[2]->arrivals.size(), 1u);
    ASSERT_EQ(h.sinks[3]->arrivals.size(), 1u);
    EXPECT_EQ(h.sinks[1]->arrivals[0].first, h.sinks[2]->arrivals[0].first);
    EXPECT_EQ(h.sinks[1]->arrivals[0].first, h.sinks[3]->arrivals[0].first);
}

TEST(VoqSwitch, MultiHopRoute)
{
    Simulator sim;
    SwitchParams params = gigeParams();
    params.port_latency = 1_us;

    // Two switches chained: sw1 port 2 egress feeds sw2 port 0 ingress.
    SwitchHarness<VoqSwitch> h1(sim, params, Bandwidth::gbps(1), 0_ns);
    SwitchHarness<VoqSwitch> h2(sim, params, Bandwidth::gbps(1), 0_ns);
    h1.out_links[2]->connectTo(h2.sw.inPort(0));

    auto p = routedPacket(0, 500); // route rewritten below
    p->route = net::SourceRoute({2, 3});
    sim.schedule(0_ns, [&h1, &p] {
        h1.in_links[0]->transmit(std::move(p));
    });
    sim.run();

    ASSERT_EQ(h2.sinks[3]->arrivals.size(), 1u);
    EXPECT_EQ(h2.sinks[3]->arrivals[0].second->hop_count, 2u);
    EXPECT_EQ(h1.sw.stats().forwarded_pkts, 1u);
    EXPECT_EQ(h2.sw.stats().forwarded_pkts, 1u);
}

TEST(VoqSwitch, PanicsOnExhaustedRoute)
{
    Simulator sim;
    SwitchHarness<VoqSwitch> h(sim, gigeParams(), Bandwidth::gbps(1), 0_ns);

    auto p = net::makePacket();
    p->flow.proto = net::Proto::Udp;
    p->payload_bytes = 10; // no route hops at all
    sim.schedule(0_ns, [&h, &p] {
        h.sw.inPort(0).receive(std::move(p));
    });
    EXPECT_DEATH(sim.run(), "exhausted route");
}

} // namespace
} // namespace switchm
} // namespace diablo
