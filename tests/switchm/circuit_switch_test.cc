#include <gtest/gtest.h>

#include "switchm/circuit_switch.hh"
#include "switchm/switch_test_util.hh"

namespace diablo {
namespace switchm {
namespace {

using namespace diablo::time_literals;
using test::SwitchHarness;
using test::routedPacket;

SwitchParams
circuitParams()
{
    SwitchParams p;
    p.name = "vc";
    p.num_ports = 4;
    p.port_bw = Bandwidth::gbps(10);
    p.port_latency = 300_ns; // supercomputer-style port latency
    return p;
}

TEST(CircuitSwitch, PacketWithoutCircuitIsRejected)
{
    Simulator sim;
    SwitchHarness<CircuitSwitch> h(sim, circuitParams(),
                                   Bandwidth::gbps(10), 0_ns);

    sim.schedule(0_ns, [&h] {
        h.sw.inPort(0).receive(routedPacket(1, 100));
    });
    sim.run();
    EXPECT_EQ(h.sw.rejectedNoCircuit(), 1u);
    EXPECT_EQ(h.sinks[1]->arrivals.size(), 0u);
}

TEST(CircuitSwitch, EstablishedCircuitCarriesTraffic)
{
    Simulator sim;
    SwitchHarness<CircuitSwitch> h(sim, circuitParams(),
                                   Bandwidth::gbps(10), 0_ns);
    h.sw.setSetupDelay(1_us);

    CircuitId id;
    sim.schedule(0_ns, [&] { id = h.sw.setupCircuit(0, 1, 1.0); });
    // Before the setup delay elapses, traffic is rejected.
    sim.schedule(500_ns, [&h] {
        h.sw.inPort(0).receive(routedPacket(1, 100));
    });
    // After setup, traffic flows.
    sim.schedule(2_us, [&h] {
        h.sw.inPort(0).receive(routedPacket(1, 100));
    });
    sim.run();

    EXPECT_TRUE(id.valid());
    EXPECT_EQ(h.sw.rejectedNoCircuit(), 1u);
    ASSERT_EQ(h.sinks[1]->arrivals.size(), 1u);
    // 300 ns port latency then serialization of the 166-byte wire frame.
    SimTime ser = Bandwidth::gbps(10).transferTime(167);
    EXPECT_EQ(h.sinks[1]->arrivals[0].first, 2_us + 300_ns + ser);
}

TEST(CircuitSwitch, AdmissionControlOnOutputCapacity)
{
    Simulator sim;
    SwitchHarness<CircuitSwitch> h(sim, circuitParams(),
                                   Bandwidth::gbps(10), 0_ns);

    CircuitId a, b, c;
    sim.schedule(0_ns, [&] {
        a = h.sw.setupCircuit(0, 3, 0.5);
        b = h.sw.setupCircuit(1, 3, 0.5);
        c = h.sw.setupCircuit(2, 3, 0.25); // would exceed 100%
    });
    sim.run();
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_FALSE(c.valid());
    EXPECT_DOUBLE_EQ(h.sw.reservedShare(3), 1.0);
}

TEST(CircuitSwitch, TeardownReleasesCapacity)
{
    Simulator sim;
    SwitchHarness<CircuitSwitch> h(sim, circuitParams(),
                                   Bandwidth::gbps(10), 0_ns);

    CircuitId a, b;
    sim.schedule(0_ns, [&] {
        a = h.sw.setupCircuit(0, 3, 1.0);
        h.sw.teardownCircuit(a);
        b = h.sw.setupCircuit(1, 3, 1.0);
    });
    sim.run();
    EXPECT_TRUE(b.valid());
    EXPECT_DOUBLE_EQ(h.sw.reservedShare(3), 1.0);
}

TEST(CircuitSwitch, PacingAtReservedRate)
{
    Simulator sim;
    SwitchHarness<CircuitSwitch> h(sim, circuitParams(),
                                   Bandwidth::gbps(10), 0_ns);
    h.sw.setSetupDelay(0_ns);

    sim.schedule(0_ns, [&h] {
        h.sw.setupCircuit(0, 1, 0.5); // half-rate circuit
    });
    sim.schedule(1_us, [&h] {
        for (int k = 0; k < 3; ++k) {
            h.sw.inPort(0).receive(routedPacket(1, 1462));
        }
    });
    sim.run();

    ASSERT_EQ(h.sinks[1]->arrivals.size(), 3u);
    // Departures are spaced at 2x the line serialization time.
    SimTime ser = Bandwidth::gbps(10).transferTime(1529);
    SimTime gap1 =
        h.sinks[1]->arrivals[1].first - h.sinks[1]->arrivals[0].first;
    SimTime gap2 =
        h.sinks[1]->arrivals[2].first - h.sinks[1]->arrivals[1].first;
    EXPECT_EQ(gap1, ser * 2);
    EXPECT_EQ(gap2, ser * 2);
}

TEST(CircuitSwitch, CircuitsDoNotBlockEachOther)
{
    Simulator sim;
    SwitchHarness<CircuitSwitch> h(sim, circuitParams(),
                                   Bandwidth::gbps(10), 0_ns);
    h.sw.setSetupDelay(0_ns);

    sim.schedule(0_ns, [&h] {
        h.sw.setupCircuit(0, 1, 1.0);
        h.sw.setupCircuit(2, 3, 1.0);
    });
    sim.schedule(1_us, [&h] {
        h.sw.inPort(0).receive(routedPacket(1, 1000));
        h.sw.inPort(2).receive(routedPacket(3, 1000));
    });
    sim.run();

    ASSERT_EQ(h.sinks[1]->arrivals.size(), 1u);
    ASSERT_EQ(h.sinks[3]->arrivals.size(), 1u);
    // Disjoint circuits see identical latency: no cross interference.
    EXPECT_EQ(h.sinks[1]->arrivals[0].first, h.sinks[3]->arrivals[0].first);
}

} // namespace
} // namespace switchm
} // namespace diablo
