#ifndef DIABLO_TESTS_SWITCHM_SWITCH_TEST_UTIL_HH_
#define DIABLO_TESTS_SWITCHM_SWITCH_TEST_UTIL_HH_

/**
 * @file
 * Shared wiring helpers for switch model tests: a switch instance with
 * per-port input links (fed by test code) and output links terminating in
 * collecting sinks.
 */

#include <memory>
#include <vector>

#include "core/simulator.hh"
#include "net/link.hh"
#include "switchm/switch.hh"

namespace diablo {
namespace switchm {
namespace test {

/** Records (arrival time, packet) pairs. */
class CollectSink : public net::PacketSink {
  public:
    explicit CollectSink(Simulator &sim) : sim_(&sim) {}

    void
    receive(net::PacketPtr p) override
    {
        arrivals.emplace_back(sim_->now(), std::move(p));
    }

    std::vector<std::pair<SimTime, net::PacketPtr>> arrivals;

  private:
    Simulator *sim_;
};

/** A switch wired with input links and sink-terminated output links. */
template <typename SwitchT>
struct SwitchHarness {
    SwitchHarness(Simulator &sim, const SwitchParams &params,
                  Bandwidth host_bw, SimTime prop)
        : sw(sim, params)
    {
        for (uint32_t i = 0; i < params.num_ports; ++i) {
            in_links.push_back(std::make_unique<net::Link>(
                sim, "in" + std::to_string(i), host_bw, prop));
            in_links.back()->connectTo(sw.inPort(i));

            sinks.push_back(std::make_unique<CollectSink>(sim));
            out_links.push_back(std::make_unique<net::Link>(
                sim, "out" + std::to_string(i), params.port_bw, prop));
            out_links.back()->connectTo(*sinks.back());
            sw.attachOutLink(i, *out_links.back());
        }
    }

    SwitchT sw;
    std::vector<std::unique_ptr<net::Link>> in_links;
    std::vector<std::unique_ptr<net::Link>> out_links;
    std::vector<std::unique_ptr<CollectSink>> sinks;
};

/** UDP packet routed to @p out_port with the given payload size. */
inline net::PacketPtr
routedPacket(uint32_t out_port, uint32_t payload)
{
    auto p = net::makePacket();
    p->flow.proto = net::Proto::Udp;
    p->payload_bytes = payload;
    p->route = net::SourceRoute({static_cast<uint16_t>(out_port)});
    return p;
}

} // namespace test
} // namespace switchm
} // namespace diablo

#endif // DIABLO_TESTS_SWITCHM_SWITCH_TEST_UTIL_HH_
