#include <gtest/gtest.h>

#include "switchm/buffer_manager.hh"

namespace diablo {
namespace switchm {
namespace {

TEST(PartitionedBuffer, PerPortIsolation)
{
    PartitionedBuffer b(4, 4096);
    EXPECT_TRUE(b.tryAdmit(0, 3000));
    EXPECT_TRUE(b.tryAdmit(0, 1000));
    EXPECT_FALSE(b.tryAdmit(0, 200)); // port 0 full
    // Other ports unaffected.
    EXPECT_TRUE(b.tryAdmit(1, 4096));
    EXPECT_EQ(b.usedAt(0), 4000u);
    EXPECT_EQ(b.usedAt(1), 4096u);
    EXPECT_EQ(b.used(), 8096u);
}

TEST(PartitionedBuffer, ReleaseRestoresCapacity)
{
    PartitionedBuffer b(2, 1000);
    EXPECT_TRUE(b.tryAdmit(0, 800));
    EXPECT_FALSE(b.tryAdmit(0, 300));
    b.release(0, 800);
    EXPECT_TRUE(b.tryAdmit(0, 1000));
    EXPECT_EQ(b.used(), 1000u);
}

TEST(PartitionedBuffer, ExactFit)
{
    PartitionedBuffer b(1, 1500);
    EXPECT_TRUE(b.tryAdmit(0, 1500));
    EXPECT_FALSE(b.tryAdmit(0, 1));
}

TEST(SharedBuffer, OnePortCanHogPool)
{
    SharedBuffer b(4, 10000);
    EXPECT_TRUE(b.tryAdmit(0, 9000));
    EXPECT_FALSE(b.tryAdmit(1, 2000)); // pool nearly full
    EXPECT_TRUE(b.tryAdmit(1, 1000));
    EXPECT_EQ(b.used(), 10000u);
    b.release(0, 9000);
    EXPECT_TRUE(b.tryAdmit(2, 5000));
}

TEST(SharedDynamicBuffer, ThresholdLimitsSingleQueue)
{
    // alpha=1: a single queue may use at most the free pool, i.e. at
    // most half the pool once it has taken half (threshold shrinks as
    // occupancy grows).
    SharedDynamicBuffer b(4, 8000, 1.0);
    uint64_t admitted = 0;
    while (b.tryAdmit(0, 500)) {
        admitted += 500;
    }
    // Fixed point: used <= 1.0 * (8000 - used)  =>  used <= 4000.
    EXPECT_EQ(admitted, 4000u);
    // A second queue can still get space.
    EXPECT_TRUE(b.tryAdmit(1, 500));
}

TEST(SharedDynamicBuffer, SmallAlphaIsStingy)
{
    SharedDynamicBuffer b(4, 8000, 0.25);
    uint64_t admitted = 0;
    while (b.tryAdmit(0, 100)) {
        admitted += 100;
    }
    // used <= 0.25 * (8000 - used) => used <= 1600.
    EXPECT_EQ(admitted, 1600u);
}

TEST(SharedDynamicBuffer, ReleaseReopensThreshold)
{
    SharedDynamicBuffer b(2, 8000, 1.0);
    while (b.tryAdmit(0, 500)) {
    }
    EXPECT_FALSE(b.tryAdmit(0, 500));
    b.release(0, 2000);
    EXPECT_TRUE(b.tryAdmit(0, 500));
}

TEST(BufferManager, FactorySelectsPolicy)
{
    SwitchParams p;
    p.num_ports = 2;
    p.buffer_policy = BufferPolicy::Partitioned;
    p.buffer_per_port_bytes = 100;
    auto part = BufferManager::create(p);
    EXPECT_TRUE(part->tryAdmit(0, 100));
    EXPECT_FALSE(part->tryAdmit(0, 1));
    EXPECT_TRUE(part->tryAdmit(1, 100));

    p.buffer_policy = BufferPolicy::Shared;
    p.buffer_total_bytes = 150;
    auto shared = BufferManager::create(p);
    EXPECT_TRUE(shared->tryAdmit(0, 100));
    EXPECT_FALSE(shared->tryAdmit(1, 100));

    p.buffer_policy = BufferPolicy::SharedDynamic;
    p.buffer_total_bytes = 1000;
    p.dynamic_alpha = 1.0;
    auto dyn = BufferManager::create(p);
    EXPECT_TRUE(dyn->tryAdmit(0, 500));
    EXPECT_FALSE(dyn->tryAdmit(0, 500));
}

TEST(SwitchParams, FromConfigOverrides)
{
    Config cfg;
    cfg.set("sw.num_ports", 48);
    cfg.set("sw.port_gbps", 10.0);
    cfg.set("sw.port_latency_ns", 100.0);
    cfg.set("sw.cut_through", false);
    cfg.set("sw.buffer_policy", "shared_dynamic");
    cfg.set("sw.buffer_total_bytes", 1048576);
    cfg.set("sw.dynamic_alpha", 0.75);

    SwitchParams p = SwitchParams::fromConfig(cfg, "sw.");
    EXPECT_EQ(p.num_ports, 48u);
    EXPECT_DOUBLE_EQ(p.port_bw.asGbps(), 10.0);
    EXPECT_EQ(p.port_latency, SimTime::ns(100));
    EXPECT_FALSE(p.cut_through);
    EXPECT_EQ(p.buffer_policy, BufferPolicy::SharedDynamic);
    EXPECT_EQ(p.buffer_total_bytes, 1048576u);
    EXPECT_DOUBLE_EQ(p.dynamic_alpha, 0.75);
}

TEST(SwitchParams, DefaultsPreservedWhenAbsent)
{
    Config cfg;
    SwitchParams defaults;
    defaults.num_ports = 32;
    defaults.port_latency = SimTime::us(1);
    SwitchParams p = SwitchParams::fromConfig(cfg, "x.", defaults);
    EXPECT_EQ(p.num_ports, 32u);
    EXPECT_EQ(p.port_latency, SimTime::us(1));
    EXPECT_EQ(p.buffer_policy, BufferPolicy::Partitioned);
}

} // namespace
} // namespace switchm
} // namespace diablo
