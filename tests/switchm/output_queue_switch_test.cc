#include <gtest/gtest.h>

#include "switchm/output_queue_switch.hh"
#include "switchm/switch_test_util.hh"

namespace diablo {
namespace switchm {
namespace {

using namespace diablo::time_literals;
using test::SwitchHarness;
using test::routedPacket;

SwitchParams
baselineParams()
{
    SwitchParams p;
    p.name = "oq";
    p.num_ports = 4;
    p.port_bw = Bandwidth::gbps(1);
    p.port_latency = 1_us;
    p.cut_through = true; // must be ignored: OQ is store-and-forward
    p.buffer_policy = BufferPolicy::Partitioned;
    p.buffer_per_port_bytes = 4096;
    return p;
}

TEST(OutputQueueSwitch, AlwaysStoreAndForward)
{
    Simulator sim;
    SwitchHarness<OutputQueueSwitch> h(sim, baselineParams(),
                                       Bandwidth::gbps(1), 0_ns);

    auto p = routedPacket(1, 1462);
    const uint32_t wire = p->wireBytes();
    sim.schedule(0_ns, [&h, &p] { h.in_links[0]->transmit(std::move(p)); });
    sim.run();

    ASSERT_EQ(h.sinks[1]->arrivals.size(), 1u);
    SimTime ser = Bandwidth::gbps(1).transferTime(wire);
    // Cut-through is requested but the OQ baseline ignores it.
    EXPECT_EQ(h.sinks[1]->arrivals[0].first, ser + 1_us + ser);
}

TEST(OutputQueueSwitch, FifoArrivalOrderNotRoundRobin)
{
    Simulator sim;
    SwitchParams params = baselineParams();
    params.port_latency = 0_ns;
    params.buffer_per_port_bytes = 1 << 20;
    SwitchHarness<OutputQueueSwitch> h(sim, params, Bandwidth::gbps(10),
                                       0_ns);

    // Input 0 injects three packets, then input 1 injects three; FIFO
    // keeps arrival order (no interleaving).
    sim.schedule(0_ns, [&h] {
        for (int k = 0; k < 3; ++k) {
            auto a = routedPacket(3, 1000);
            a->flow.src = 100;
            h.sw.inPort(0).receive(std::move(a));
        }
        for (int k = 0; k < 3; ++k) {
            auto b = routedPacket(3, 1000);
            b->flow.src = 200;
            h.sw.inPort(1).receive(std::move(b));
        }
    });
    sim.run();

    ASSERT_EQ(h.sinks[3]->arrivals.size(), 6u);
    std::vector<net::NodeId> srcs;
    for (auto &[t, pkt] : h.sinks[3]->arrivals) {
        srcs.push_back(pkt->flow.src);
    }
    EXPECT_EQ(srcs, (std::vector<net::NodeId>{100, 100, 100, 200, 200,
                                              200}));
}

TEST(OutputQueueSwitch, DropTailOnFullQueue)
{
    Simulator sim;
    SwitchParams params = baselineParams();
    params.port_latency = 0_ns;
    SwitchHarness<OutputQueueSwitch> h(sim, params, Bandwidth::gbps(1),
                                       0_ns);

    sim.schedule(0_ns, [&h] {
        for (int k = 0; k < 6; ++k) {
            h.sw.inPort(0).receive(routedPacket(1, 1462));
        }
    });
    sim.run();

    EXPECT_EQ(h.sw.stats().forwarded_pkts, 2u);
    EXPECT_EQ(h.sw.stats().dropped_pkts, 4u);
}

} // namespace
} // namespace switchm
} // namespace diablo
