#include <gtest/gtest.h>

#include "core/random.hh"
#include "switchm/output_queue_switch.hh"
#include "switchm/switch_test_util.hh"
#include "switchm/voq_switch.hh"

namespace diablo {
namespace switchm {
namespace {

using namespace diablo::time_literals;
using test::SwitchHarness;

/** One point in the switch design space. */
struct SwitchCase {
    const char *model;   // "voq" | "oq"
    BufferPolicy policy;
    uint64_t buffer_bytes;
    bool cut_through;
    uint64_t seed;
};

std::string
caseName(const testing::TestParamInfo<SwitchCase> &info)
{
    const SwitchCase &c = info.param;
    return std::string(c.model) + "_" + bufferPolicyName(c.policy) + "_" +
           std::to_string(c.buffer_bytes) + "_" +
           (c.cut_through ? "ct" : "sf") + "_s" +
           std::to_string(c.seed);
}

/**
 * Property suite: for ANY switch configuration, under a random traffic
 * pattern,
 *  - every injected packet is either forwarded or counted as dropped
 *    (packet conservation);
 *  - packets of the same (input, output) pair arrive in injection
 *    order (no reordering);
 *  - when the fabric drains, all buffer accounting returns to zero.
 */
class SwitchProperties : public testing::TestWithParam<SwitchCase> {};

TEST_P(SwitchProperties, ConservationOrderingAndDrain)
{
    const SwitchCase &c = GetParam();
    Simulator sim;

    SwitchParams params;
    params.num_ports = 6;
    params.port_bw = Bandwidth::gbps(1);
    params.port_latency = 500_ns;
    params.cut_through = c.cut_through;
    params.buffer_policy = c.policy;
    params.buffer_per_port_bytes = c.buffer_bytes;
    params.buffer_total_bytes = c.buffer_bytes * 6;

    const bool is_voq = std::string(c.model) == "voq";
    std::unique_ptr<SwitchHarness<VoqSwitch>> voq;
    std::unique_ptr<SwitchHarness<OutputQueueSwitch>> oq;
    Switch *sw = nullptr;
    if (is_voq) {
        voq = std::make_unique<SwitchHarness<VoqSwitch>>(
            sim, params, Bandwidth::gbps(1), 0_ns);
        sw = &voq->sw;
    } else {
        oq = std::make_unique<SwitchHarness<OutputQueueSwitch>>(
            sim, params, Bandwidth::gbps(1), 0_ns);
        sw = &oq->sw;
    }
    auto &sinks = is_voq ? voq->sinks : oq->sinks;

    // Inject a random pattern: bursts from random inputs to random
    // outputs with random sizes, with a per-(in,out) sequence number
    // stamped in the flow source port.
    Rng rng(c.seed);
    const int kPackets = 400;
    uint64_t next_seq[6][6] = {};
    for (int i = 0; i < kPackets; ++i) {
        const auto in = static_cast<uint32_t>(rng.uniformInt(0, 5));
        const auto out = static_cast<uint32_t>(rng.uniformInt(0, 5));
        const auto bytes =
            static_cast<uint32_t>(rng.uniformInt(1, 1400));
        // Injection times increase with creation order (jitter smaller
        // than the stride), so per-pair sequence numbers are injected
        // in order and the FIFO property below is well-defined.
        const SimTime when = SimTime::ns(i * 700) +
                             SimTime::ns(rng.uniformInt(0, 500));
        const uint64_t seq = next_seq[in][out]++;
        sim.scheduleAt(when, [sw, in, out, bytes, seq] {
            auto p = net::makePacket();
            p->flow.proto = net::Proto::Udp;
            p->flow.src = in;
            p->flow.dst = out;
            p->flow.sport = static_cast<uint16_t>(seq);
            p->payload_bytes = bytes;
            p->route = net::SourceRoute({static_cast<uint16_t>(out)});
            p->last_bit = SimTime::max(); // filled below
            // Direct injection: pretend the bits just finished arriving.
            p->first_bit = p->last_bit = SimTime();
            sw->inPort(in).receive(std::move(p));
        });
    }
    sim.run();

    // Conservation.
    uint64_t delivered = 0;
    for (auto &sink : sinks) {
        delivered += sink->arrivals.size();
    }
    EXPECT_EQ(delivered + sw->stats().dropped_pkts,
              static_cast<uint64_t>(kPackets));
    EXPECT_EQ(sw->stats().forwarded_pkts, delivered);

    // Per-(input, output) FIFO ordering among survivors.
    for (uint32_t out = 0; out < 6; ++out) {
        uint64_t last_seen[6];
        for (auto &v : last_seen) {
            v = 0;
        }
        bool first[6] = {false, false, false, false, false, false};
        for (auto &[t, pkt] : sinks[out]->arrivals) {
            const uint32_t in = pkt->flow.src;
            const uint64_t seq = pkt->flow.sport;
            if (first[in]) {
                EXPECT_GT(seq, last_seen[in])
                    << "reordering on pair (" << in << "," << out << ")";
            }
            last_seen[in] = seq;
            first[in] = true;
        }
    }

    // Buffer accounting fully drained.
    if (is_voq) {
        EXPECT_EQ(voq->sw.bufferUsed(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, SwitchProperties,
    testing::Values(
        SwitchCase{"voq", BufferPolicy::Partitioned, 4096, true, 1},
        SwitchCase{"voq", BufferPolicy::Partitioned, 4096, false, 2},
        SwitchCase{"voq", BufferPolicy::Partitioned, 65536, true, 3},
        SwitchCase{"voq", BufferPolicy::Shared, 16384, true, 4},
        SwitchCase{"voq", BufferPolicy::Shared, 262144, false, 5},
        SwitchCase{"voq", BufferPolicy::SharedDynamic, 16384, true, 6},
        SwitchCase{"voq", BufferPolicy::SharedDynamic, 262144, true, 7},
        SwitchCase{"oq", BufferPolicy::Partitioned, 4096, false, 8},
        SwitchCase{"oq", BufferPolicy::Partitioned, 65536, true, 9},
        SwitchCase{"oq", BufferPolicy::Shared, 65536, false, 10}),
    caseName);

} // namespace
} // namespace switchm
} // namespace diablo
